//! Property tests for `xbar-infer`: the determinism discipline (draws
//! keyed by `(campaign_seed, chain_index, step)` and invariant to the
//! worker-thread count) and statistical sanity of the samplers against
//! models with known posteriors.

use proptest::prelude::*;
use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_crossbar::power::PowerModel;
use xbar_infer::{
    estimate_noise_sigma, random_design, run_chains, summarize, BayesModel, ChainConfig, Kernel,
    NormPosterior, PowerObservations, Prior,
};
use xbar_linalg::Matrix;
use xbar_nn::activation::Activation;
use xbar_nn::network::SingleLayerNet;

/// A conjugate Gaussian toy: priors N(0, prior_sd²), likelihood a
/// product of Gaussians centred per-dimension — the posterior is known
/// in closed form, and density evaluation is cheap enough for
/// property-test budgets.
struct GaussianToy {
    priors: Vec<Prior>,
    center: Vec<f64>,
    sigma: f64,
}

impl GaussianToy {
    fn new(center: Vec<f64>, prior_sd: f64, sigma: f64) -> Self {
        let priors = vec![Prior::normal(0.0, prior_sd).unwrap(); center.len()];
        GaussianToy {
            priors,
            center,
            sigma,
        }
    }
}

impl BayesModel for GaussianToy {
    fn dim(&self) -> usize {
        self.center.len()
    }
    fn priors(&self) -> &[Prior] {
        &self.priors
    }
    fn log_likelihood(&self, theta: &[f64]) -> f64 {
        let inv = 1.0 / (self.sigma * self.sigma);
        -0.5 * inv
            * theta
                .iter()
                .zip(&self.center)
                .map(|(t, c)| (t - c) * (t - c))
                .sum::<f64>()
    }
}

fn victim_oracle(noise: f64, seed: u64) -> Oracle {
    // Column norms: [1.5, 0.75, 0.6, 1.1].
    let w = Matrix::from_rows(&[&[1.0, -0.5, 0.1, -0.6], &[0.5, 0.25, -0.5, 0.5]]);
    let net = SingleLayerNet::from_weights(w, Activation::Identity);
    let mut cfg = OracleConfig::ideal().with_access(OutputAccess::None);
    if noise > 0.0 {
        cfg = cfg.with_power(PowerModel::default().with_noise(noise));
    }
    Oracle::new(net, &cfg, seed).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Acceptance criterion: multi-chain draws are bit-identical at
    /// any worker-thread count. Every chain is keyed by
    /// `(campaign_seed, chain_index, step)`, so scheduling cannot
    /// reorder randomness.
    #[test]
    fn draws_are_bit_identical_across_thread_counts(
        campaign_seed in any::<u64>(),
        num_chains in 1usize..7,
        samples in 5usize..40,
        burn_in in 0usize..20,
        thin in 1usize..4,
        ess_kernel in any::<bool>(),
    ) {
        let model = GaussianToy::new(vec![0.8, -0.3, 0.4], 1.5, 0.6);
        let kernel = if ess_kernel {
            Kernel::EllipticalSlice
        } else {
            Kernel::RandomWalk { steps: vec![0.4; 3] }
        };
        let config = ChainConfig::new(burn_in, samples, thin).unwrap();
        let baseline = run_chains(&model, &kernel, &config, campaign_seed, num_chains, 1).unwrap();
        for threads in [4, 8, 0] {
            let other =
                run_chains(&model, &kernel, &config, campaign_seed, num_chains, threads).unwrap();
            prop_assert_eq!(&baseline, &other);
        }
    }

    /// Chains are keyed streams: a different campaign seed moves every
    /// chain, and each chain within a campaign is distinct.
    #[test]
    fn seeds_and_chain_indices_separate_streams(campaign_seed in any::<u64>()) {
        let model = GaussianToy::new(vec![0.5, 0.5], 1.0, 0.5);
        let config = ChainConfig::new(5, 20, 1).unwrap();
        let kernel = Kernel::EllipticalSlice;
        let a = run_chains(&model, &kernel, &config, campaign_seed, 2, 1).unwrap();
        let b = run_chains(&model, &kernel, &config, campaign_seed.wrapping_add(1), 2, 1).unwrap();
        prop_assert!(a[0].draws != b[0].draws);
        prop_assert!(a[0].draws != a[1].draws);
    }

    /// With a flat likelihood the posterior *is* the prior: sampled
    /// moments must match the prior's within Monte-Carlo error.
    #[test]
    fn flat_likelihood_recovers_the_prior(campaign_seed in any::<u64>()) {
        struct FlatModel {
            priors: Vec<Prior>,
        }
        impl BayesModel for FlatModel {
            fn dim(&self) -> usize {
                self.priors.len()
            }
            fn priors(&self) -> &[Prior] {
                &self.priors
            }
            fn log_likelihood(&self, _theta: &[f64]) -> f64 {
                0.0
            }
        }
        let model = FlatModel {
            priors: vec![Prior::normal(0.7, 0.9).unwrap()],
        };
        let config = ChainConfig::new(100, 1200, 1).unwrap();
        let chains =
            run_chains(&model, &Kernel::EllipticalSlice, &config, campaign_seed, 4, 1).unwrap();
        let report = summarize(&chains, &[0], 0.95).unwrap();
        prop_assert!((report.dims[0].mean - 0.7).abs() < 0.15, "mean {}", report.dims[0].mean);
        prop_assert!((report.dims[0].sd - 0.9).abs() < 0.2, "sd {}", report.dims[0].sd);
    }
}

/// Both kernels target the same posterior: on the conjugate toy their
/// estimated means agree with each other and with the closed form.
#[test]
fn kernels_agree_on_the_conjugate_posterior() {
    let model = GaussianToy::new(vec![1.0, -0.5], 2.0, 0.5);
    let config = ChainConfig::new(500, 4000, 1).unwrap();
    let ess = run_chains(&model, &Kernel::EllipticalSlice, &config, 11, 4, 0).unwrap();
    let rw_kernel = Kernel::RandomWalk {
        steps: vec![0.35; 2],
    };
    let rw = run_chains(&model, &rw_kernel, &config, 11, 4, 0).unwrap();
    let ess_report = summarize(&ess, &[0, 1], 0.95).unwrap();
    let rw_report = summarize(&rw, &[0, 1], 0.95).unwrap();
    let shrink = 4.0 / (4.0 + 0.25);
    for (d, c) in ess_report.dims.iter().zip([1.0, -0.5]) {
        assert!((d.mean - c * shrink).abs() < 0.05, "ess mean {}", d.mean);
        assert!(d.rhat < 1.05, "ess rhat {}", d.rhat);
    }
    for (d, c) in rw_report.dims.iter().zip([1.0, -0.5]) {
        assert!((d.mean - c * shrink).abs() < 0.08, "rw mean {}", d.mean);
        assert!(d.rhat < 1.1, "rw rhat {}", d.rhat);
    }
}

/// End-to-end on real oracle plumbing: collect noisy power readings,
/// estimate the noise, sample the posterior, and check the credible
/// intervals land on the true column norms and tighten with budget.
#[test]
fn posterior_covers_true_norms_and_tightens_with_budget() {
    let noise = 0.05;
    let subset = [0usize, 1, 2, 3];
    let truth = victim_oracle(0.0, 1).true_column_norms();
    let mut widths = Vec::new();
    for (budget, seed) in [(16usize, 21u64), (256usize, 22u64)] {
        let mut oracle = victim_oracle(noise, seed);
        let sigma = estimate_noise_sigma(&mut oracle, &[0.5, 0.5, 0.5, 0.5], 32).unwrap();
        assert!(sigma > 0.0);
        let design = random_design(budget, 4, Some(&subset), 7).unwrap();
        let obs = PowerObservations::collect(&mut oracle, &design).unwrap();
        let priors = vec![Prior::normal(1.0, 2.0).unwrap(); 4];
        let model = NormPosterior::new(&obs, &subset, priors, sigma * 1.2).unwrap();
        let config = ChainConfig::new(400, 2000, 1).unwrap();
        let chains = run_chains(&model, &Kernel::EllipticalSlice, &config, 33, 4, 0).unwrap();
        let report = summarize(&chains, &subset, 0.95).unwrap();
        assert!(
            report.coverage(&truth).unwrap() >= 0.75,
            "budget {budget}: CIs should cover the truth, got {}",
            report.coverage(&truth).unwrap()
        );
        assert!(
            report.max_rhat < 1.1,
            "budget {budget}: rhat {}",
            report.max_rhat
        );
        widths.push(report.mean_ci_width());
    }
    assert!(
        widths[1] < widths[0],
        "16x the budget must tighten the posterior: {widths:?}"
    );
}
