//! Cholesky factorisation of symmetric positive-definite matrices and
//! ridge-regularised least squares.
//!
//! The attack library's noise-robust weight-recovery path solves the normal
//! equations `(UᵀU + λI) Wᵀ = Uᵀ Ŷ` with [`ridge_solve`], which is the
//! numerically cheap route when the query matrix is large and noisy.

use crate::{LinalgError, Matrix, Result};

/// A Cholesky factorisation `A = L Lᵀ` of a symmetric positive-definite
/// matrix, with `L` lower triangular.
///
/// # Example
///
/// ```
/// use xbar_linalg::{Matrix, cholesky::CholeskyDecomposition};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let ch = CholeskyDecomposition::new(&a)?;
/// let l = ch.l();
/// assert!(l.matmul(&l.transpose()).approx_eq(&a, 1e-10));
/// # Ok::<(), xbar_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyDecomposition {
    l: Matrix,
}

impl CholeskyDecomposition {
    /// Factors the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read; symmetry is assumed, not
    /// verified.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] if `a` has no elements.
    /// * [`LinalgError::NotSquare`] if `a` is rectangular.
    /// * [`LinalgError::NotPositiveDefinite`] if a non-positive pivot is
    ///   encountered.
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.is_empty() {
            return Err(LinalgError::Empty);
        }
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(CholeskyDecomposition { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` using the factorisation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Back substitution Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * x[j];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column-by-column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut x = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let xj = self.solve(&b.col(j))?;
            x.set_col(j, &xj);
        }
        Ok(x)
    }
}

/// Ridge-regularised least squares: solves
/// `min_X ‖A X - B‖_F² + λ ‖X‖_F²` via the normal equations
/// `(AᵀA + λ I) X = Aᵀ B`.
///
/// With `lambda = 0` and a full-column-rank `A` this equals the ordinary
/// least-squares solution; a small positive `lambda` keeps the solve stable
/// when `A` is rank deficient or noisy.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `a.rows() != b.rows()`.
/// * [`LinalgError::NotPositiveDefinite`] if `AᵀA + λI` is not positive
///   definite (possible only for `lambda = 0` with rank-deficient `A`).
pub fn ridge_solve(a: &Matrix, b: &Matrix, lambda: f64) -> Result<Matrix> {
    if a.rows() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "ridge_solve",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let at = a.transpose();
    let mut ata = at.matmul(a);
    for i in 0..ata.rows() {
        ata[(i, i)] += lambda;
    }
    let atb = at.matmul(b);
    CholeskyDecomposition::new(&ata)?.solve_matrix(&atb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(13)
    }

    /// Builds a random SPD matrix as `M Mᵀ + n I`.
    fn random_spd(n: usize, r: &mut ChaCha8Rng) -> Matrix {
        let m = Matrix::random_uniform(n, n, -1.0, 1.0, r);
        let mut spd = m.matmul(&m.transpose());
        for i in 0..n {
            spd[(i, i)] += n as f64;
        }
        spd
    }

    #[test]
    fn factor_reconstructs() {
        let mut r = rng();
        let a = random_spd(10, &mut r);
        let ch = CholeskyDecomposition::new(&a).unwrap();
        let l = ch.l();
        assert!(l.matmul(&l.transpose()).approx_eq(&a, 1e-9));
    }

    #[test]
    fn l_is_lower_triangular_with_positive_diagonal() {
        let mut r = rng();
        let a = random_spd(6, &mut r);
        let l = CholeskyDecomposition::new(&a).unwrap().l().clone();
        for i in 0..6 {
            assert!(l[(i, i)] > 0.0);
            for j in (i + 1)..6 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solve_roundtrip() {
        let mut r = rng();
        let a = random_spd(8, &mut r);
        let x_true: Vec<f64> = (0..8).map(|i| i as f64 * 0.3 - 1.0).collect();
        let b = a.matvec(&x_true);
        let x = CholeskyDecomposition::new(&a).unwrap().solve(&b).unwrap();
        for (g, w) in x.iter().zip(&x_true) {
            assert!((g - w).abs() < 1e-8);
        }
    }

    #[test]
    fn solve_matrix_roundtrip() {
        let mut r = rng();
        let a = random_spd(5, &mut r);
        let x_true = Matrix::random_uniform(5, 3, -1.0, 1.0, &mut r);
        let b = a.matmul(&x_true);
        let x = CholeskyDecomposition::new(&a)
            .unwrap()
            .solve_matrix(&b)
            .unwrap();
        assert!(x.approx_eq(&x_true, 1e-8));
    }

    #[test]
    fn not_positive_definite_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            CholeskyDecomposition::new(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn shape_errors() {
        assert!(matches!(
            CholeskyDecomposition::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            CholeskyDecomposition::new(&Matrix::default()),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn ridge_solve_zero_lambda_matches_lstsq() {
        let mut r = rng();
        let a = Matrix::random_uniform(30, 6, -1.0, 1.0, &mut r);
        let x_true = Matrix::random_uniform(6, 2, -1.0, 1.0, &mut r);
        let b = a.matmul(&x_true);
        let x = ridge_solve(&a, &b, 0.0).unwrap();
        assert!(x.approx_eq(&x_true, 1e-7));
    }

    #[test]
    fn ridge_solve_shrinks_solution() {
        let mut r = rng();
        let a = Matrix::random_uniform(30, 6, -1.0, 1.0, &mut r);
        let x_true = Matrix::random_uniform(6, 2, -1.0, 1.0, &mut r);
        let b = a.matmul(&x_true);
        let x0 = ridge_solve(&a, &b, 0.0).unwrap();
        let x_big = ridge_solve(&a, &b, 1e3).unwrap();
        assert!(x_big.fro_norm() < x0.fro_norm());
    }

    #[test]
    fn ridge_solve_handles_rank_deficiency() {
        // Duplicate column: rank deficient, but lambda > 0 keeps it solvable.
        let base = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let a = base.hstack(&base).unwrap();
        let b = Matrix::from_rows(&[&[2.0], &[4.0], &[6.0]]);
        let x = ridge_solve(&a, &b, 1e-6).unwrap();
        // Both coefficients share the weight; their sum predicts b.
        let pred = a.matmul(&x);
        assert!(pred.approx_eq(&b, 1e-3));
    }

    #[test]
    fn ridge_solve_dimension_mismatch() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::zeros(4, 1);
        assert!(ridge_solve(&a, &b, 0.1).is_err());
    }
}
