use std::fmt;

/// Errors produced by the linear-algebra routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    DimensionMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left operand, `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand, `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A square matrix was required but a rectangular one was supplied.
    NotSquare {
        /// Shape of the offending matrix.
        shape: (usize, usize),
    },
    /// The matrix is singular (or numerically so) and cannot be factorised
    /// or inverted.
    Singular,
    /// Cholesky factorisation was attempted on a matrix that is not
    /// (numerically) symmetric positive definite.
    NotPositiveDefinite,
    /// An operation that requires at least one element was given an empty
    /// matrix or slice.
    Empty,
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// A least-squares problem was underdetermined where an overdetermined
    /// or square system was required.
    Underdetermined {
        /// Number of equations (rows).
        rows: usize,
        /// Number of unknowns (columns).
        cols: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not symmetric positive definite")
            }
            LinalgError::Empty => write!(f, "operation requires a non-empty operand"),
            LinalgError::NoConvergence { iterations } => {
                write!(f, "iteration did not converge after {iterations} sweeps")
            }
            LinalgError::Underdetermined { rows, cols } => write!(
                f,
                "system is underdetermined: {rows} equations for {cols} unknowns"
            ),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: (2, 3),
                rhs: (4, 5),
            },
            LinalgError::NotSquare { shape: (2, 3) },
            LinalgError::Singular,
            LinalgError::NotPositiveDefinite,
            LinalgError::Empty,
            LinalgError::NoConvergence { iterations: 30 },
            LinalgError::Underdetermined { rows: 3, cols: 7 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
