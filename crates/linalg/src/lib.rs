//! # xbar-linalg
//!
//! Dense linear algebra substrate for the `xbar-power-attacks` workspace.
//!
//! This crate provides everything the crossbar simulator, the neural-network
//! layer, and the attack library need, implemented from scratch:
//!
//! * [`Matrix`] — a dense, row-major, `f64` matrix with elementwise ops,
//!   (rayon-parallel) matrix multiplication, norms, stacking and slicing.
//! * [`vec_ops`] — slice-level vector kernels (dot, axpy, norms, argmax).
//! * [`qr`] — Householder QR and least-squares solves.
//! * [`lu`] — LU with partial pivoting, determinants, inverses.
//! * [`cholesky`] — Cholesky factorisation and ridge-regularised solves.
//! * [`svd`] — one-sided Jacobi SVD, Moore–Penrose pseudoinverse, rank.
//!
//! The pseudoinverse is what the paper's Section IV uses to argue that once
//! the number of independent queries reaches the input dimension, the weight
//! matrix is exactly recoverable as `W = U† Ŷ`; see
//! [`svd::pinv`] and `xbar-core`'s `recovery` module.
//!
//! # Example
//!
//! ```
//! use xbar_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cholesky;
mod error;
pub mod lu;
mod matrix;
pub mod qr;
pub mod svd;
pub mod vec_ops;

pub use error::LinalgError;
pub use matrix::Matrix;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Default absolute tolerance used by approximate comparisons and rank
/// decisions throughout the crate.
pub const DEFAULT_TOL: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_example_compiles() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::identity(2);
        assert_eq!(a.matmul(&b), a);
    }
}
