//! LU factorisation with partial pivoting, plus determinant, inverse, and
//! square-system solves.

use crate::{LinalgError, Matrix, Result};

/// An LU factorisation `P A = L U` of a square matrix with partial
/// (row) pivoting.
///
/// # Example
///
/// ```
/// use xbar_linalg::{Matrix, lu::LuDecomposition};
///
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-10);
/// assert!((x[1] - 2.0).abs() < 1e-10);
/// # Ok::<(), xbar_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Packed LU factors: strictly lower triangle holds `L` (unit diagonal
    /// implied), upper triangle holds `U`.
    packed: Matrix,
    /// Row permutation: row `i` of the factored matrix is row `perm[i]` of
    /// the original.
    perm: Vec<usize>,
    /// Sign of the permutation (+1 or -1), used for the determinant.
    perm_sign: f64,
}

impl LuDecomposition {
    /// Factors the square matrix `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] if `a` has no elements.
    /// * [`LinalgError::NotSquare`] if `a` is rectangular.
    /// * [`LinalgError::Singular`] if a zero pivot is encountered.
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.is_empty() {
            return Err(LinalgError::Empty);
        }
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut packed = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Find the pivot row.
            let mut pivot_row = k;
            let mut pivot_val = packed[(k, k)].abs();
            for i in (k + 1)..n {
                let v = packed[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < 1e-300 {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                // Swap rows k and pivot_row.
                for j in 0..n {
                    let tmp = packed[(k, j)];
                    packed[(k, j)] = packed[(pivot_row, j)];
                    packed[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = packed[(k, k)];
            for i in (k + 1)..n {
                let factor = packed[(i, k)] / pivot;
                packed[(i, k)] = factor;
                for j in (k + 1)..n {
                    let pkj = packed[(k, j)];
                    packed[(i, j)] -= factor * pkj;
                }
            }
        }

        Ok(LuDecomposition {
            packed,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.packed.rows()
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.packed[(i, i)];
        }
        d
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply the permutation, then forward/back substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.packed[(i, j)] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.packed[(i, j)] * x[j];
            }
            x[i] = s / self.packed[(i, i)];
        }
        Ok(x)
    }

    /// Computes the inverse of the original matrix.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LuDecomposition::solve`].
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            inv.set_col(j, &col);
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

/// Solves the square system `A x = b` via LU with partial pivoting.
///
/// # Errors
///
/// See [`LuDecomposition::new`] and [`LuDecomposition::solve`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    LuDecomposition::new(a)?.solve(b)
}

/// Computes the determinant of a square matrix.
///
/// # Errors
///
/// Returns the factorisation errors of [`LuDecomposition::new`]; a singular
/// matrix yields `Ok(0.0)` only when the zero pivot appears at the last
/// elimination step, otherwise [`LinalgError::Singular`] is returned (use
/// this function for well-conditioned matrices).
pub fn det(a: &Matrix) -> Result<f64> {
    Ok(LuDecomposition::new(a)?.det())
}

/// Computes the inverse of a square matrix.
///
/// # Errors
///
/// See [`LuDecomposition::new`] and [`LuDecomposition::inverse`].
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    LuDecomposition::new(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = solve(&a, &[8.0, -11.0, -3.0]).unwrap();
        let want = [2.0, 3.0, -1.0];
        for (g, w) in x.iter().zip(&want) {
            assert!((g - w).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_random_roundtrip() {
        let mut r = rng();
        for _ in 0..5 {
            let a = Matrix::random_uniform(12, 12, -2.0, 2.0, &mut r);
            let x_true: Vec<f64> = (0..12).map(|i| (i as f64).sin()).collect();
            let b = a.matvec(&x_true);
            let x = solve(&a, &b).unwrap();
            for (g, w) in x.iter().zip(&x_true) {
                assert!((g - w).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn det_known() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]);
        assert!((det(&a).unwrap() - (-14.0)).abs() < 1e-10);
        assert!((det(&Matrix::identity(5)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn det_of_permutation_matrix_is_signed() {
        // Swap of two rows of the identity: determinant -1.
        let p = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((det(&p).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let mut r = rng();
        let a = Matrix::random_uniform(8, 8, -1.0, 1.0, &mut r);
        let inv = inverse(&a).unwrap();
        assert!(a.matmul(&inv).approx_eq(&Matrix::identity(8), 1e-8));
        assert!(inv.matmul(&a).approx_eq(&Matrix::identity(8), 1e-8));
    }

    #[test]
    fn singular_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn not_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::NotSquare { shape: (2, 3) })
        ));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            LuDecomposition::new(&Matrix::default()),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        assert_eq!(x, vec![5.0, 3.0]);
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let lu = LuDecomposition::new(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }
}
