use crate::{LinalgError, Result};
use rand::distributions::Distribution;
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// Minimum number of rows before [`Matrix::matmul`] switches to the
/// rayon-parallel kernel. Below this the sequential kernel is faster.
const PAR_ROW_THRESHOLD: usize = 64;

/// A dense, row-major matrix of `f64` values.
///
/// This is the workhorse type of the whole workspace: datasets are stored as
/// `samples x features` matrices, network weights as `outputs x inputs`
/// matrices (matching the paper's `M x N` weight matrix `W`), and crossbar
/// conductances as a pair of matrices `G+` and `G-`.
///
/// # Example
///
/// ```
/// use xbar_linalg::Matrix;
///
/// let w = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
/// let norms = w.col_l1_norms();
/// assert_eq!(norms, vec![1.5, 5.0]);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Matrix::filled(rows, cols, 1.0)
    }

    /// Creates a `rows x cols` matrix with every entry equal to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "from_rows: row {i} has wrong length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at each position.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(v: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// Creates a single-column matrix from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Creates a square matrix with `diag` on the main diagonal.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a matrix whose entries are drawn i.i.d. uniformly from
    /// `[lo, hi)` using the supplied RNG.
    pub fn random_uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        lo: f64,
        hi: f64,
        rng: &mut R,
    ) -> Self {
        let dist = rand::distributions::Uniform::new(lo, hi);
        let data = (0..rows * cols).map(|_| dist.sample(rng)).collect();
        Matrix { rows, cols, data }
    }

    /// Creates a matrix whose entries are drawn i.i.d. from a normal
    /// distribution with the given mean and standard deviation.
    pub fn random_normal<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        mean: f64,
        std: f64,
        rng: &mut R,
    ) -> Self {
        // Box-Muller transform; avoids a rand_distr dependency.
        let mut data = Vec::with_capacity(rows * cols);
        while data.len() < rows * cols {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < rows * cols {
                data.push(mean + std * r * theta.sin());
            }
        }
        Matrix { rows, cols, data }
    }

    // ------------------------------------------------------------------
    // Shape and element access
    // ------------------------------------------------------------------

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Element at `(i, j)`, or `None` if out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Immutable view of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        let c = self.cols;
        &mut self.data[i * c..(i + 1) * c]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Overwrites column `j` with the values in `v`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()` or `v.len() != self.rows()`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        assert_eq!(v.len(), self.rows, "set_col: length mismatch");
        for (i, &x) in v.iter().enumerate() {
            self.data[i * self.cols + j] = x;
        }
    }

    /// Iterator over the rows of the matrix as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// The underlying row-major data slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    // ------------------------------------------------------------------
    // Elementwise operations
    // ------------------------------------------------------------------

    /// Returns a new matrix with `f` applied to every element.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f64) -> f64>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Returns a new matrix `f(self[i,j], other[i,j])`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn zip_map<F: Fn(f64, f64) -> f64>(&self, other: &Matrix, f: F) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "zip_map",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns the matrix scaled by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// `self += alpha * other` (matrix AXPY).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (x, &y) in self.data.iter_mut().zip(&other.data) {
            *x += alpha * y;
        }
    }

    // ------------------------------------------------------------------
    // Linear-algebra operations
    // ------------------------------------------------------------------

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// Uses a cache-friendly `ikj` kernel, parallelised over row blocks with
    /// rayon once the output has at least `PAR_ROW_THRESHOLD` rows.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`. Use [`Matrix::checked_matmul`]
    /// for a fallible variant.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.checked_matmul(other)
            .expect("matmul: inner dimensions must agree")
    }

    /// Fallible matrix-matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the inner dimensions
    /// disagree.
    pub fn checked_matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0; m * n];
        let kernel = |i: usize, out_row: &mut [f64]| {
            let a_row = &self.data[i * k..(i + 1) * k];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ip * b;
                }
            }
        };
        if m >= PAR_ROW_THRESHOLD {
            out.par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, row)| kernel(i, row));
        } else {
            for (i, row) in out.chunks_mut(n).enumerate() {
                kernel(i, row);
            }
        }
        Ok(Matrix {
            rows: m,
            cols: n,
            data: out,
        })
    }

    /// Product with a transposed right-hand side: `self * otherᵀ`, where
    /// `self` is `m x k` and `other` is `n x k`, without forming the
    /// transpose.
    ///
    /// Every output entry is a single row-row [`crate::vec_ops::dot`] —
    /// the same full-length ascending-index reduction [`Matrix::matvec`]
    /// performs — so `a.matmul_nt(&b)` row `i` is bit-identical to
    /// `b.matvec(a.row(i))`. Batch evaluation paths rely on this to stay
    /// bit-identical to their per-vector counterparts. Rows are
    /// independent, so the rayon split above `PAR_ROW_THRESHOLD` cannot
    /// change results.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the column counts
    /// (the shared inner dimension) differ.
    pub fn matmul_nt(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_nt",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, n) = (self.rows, other.rows);
        let mut out = vec![0.0; m * n];
        let kernel = |i: usize, out_row: &mut [f64]| {
            let a_row = self.row(i);
            for (o, b_row) in out_row.iter_mut().zip(other.rows_iter()) {
                *o = crate::vec_ops::dot(a_row, b_row);
            }
        };
        if m >= PAR_ROW_THRESHOLD {
            out.par_chunks_mut(n.max(1))
                .enumerate()
                .for_each(|(i, row)| kernel(i, row));
        } else {
            for (i, row) in out.chunks_mut(n.max(1)).enumerate() {
                kernel(i, row);
            }
        }
        Ok(Matrix {
            rows: m,
            cols: n,
            data: out,
        })
    }

    /// Product with a transposed left-hand side: `selfᵀ * other`, where
    /// `self` is `k x m` and `other` is `k x n`, without forming the
    /// transpose.
    ///
    /// Used by the SGD trainers for the gradient `Δᵀ·X` so no `k x m`
    /// transpose is materialised per minibatch. Accumulates over `k` in
    /// ascending order with contiguous row accesses on both operands.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the row counts (the
    /// shared inner dimension) differ.
    pub fn matmul_tn(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_tn",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, n) = (self.cols, other.cols);
        let mut out = vec![0.0; m * n];
        for (a_row, b_row) in self.rows_iter().zip(other.rows_iter()) {
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Ok(Matrix {
            rows: m,
            cols: n,
            data: out,
        })
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec: length mismatch");
        self.rows_iter()
            .map(|row| crate::vec_ops::dot(row, v))
            .collect()
    }

    /// Transposed matrix-vector product `selfᵀ * v` without forming the
    /// transpose.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()`.
    pub fn tr_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "tr_matvec: length mismatch");
        let mut out = vec![0.0; self.cols];
        for (row, &vi) in self.rows_iter().zip(v) {
            if vi == 0.0 {
                continue;
            }
            for (o, &r) in out.iter_mut().zip(row) {
                *o += vi * r;
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Norms and reductions
    // ------------------------------------------------------------------

    /// The 1-norms of each column: `‖W[:,j]‖₁ = Σ_i |w_ij|`.
    ///
    /// This is exactly the quantity the paper shows is leaked by the
    /// crossbar's total current (Eq. 5–6).
    pub fn col_l1_norms(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for row in self.rows_iter() {
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x.abs();
            }
        }
        out
    }

    /// The 2-norms of each column.
    pub fn col_l2_norms(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for row in self.rows_iter() {
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x * x;
            }
        }
        for o in &mut out {
            *o = o.sqrt();
        }
        out
    }

    /// The 1-norms of each row.
    pub fn row_l1_norms(&self) -> Vec<f64> {
        self.rows_iter()
            .map(|r| r.iter().map(|x| x.abs()).sum())
            .collect()
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry, or `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all entries.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty.
    pub fn mean(&self) -> f64 {
        assert!(!self.is_empty(), "mean of empty matrix");
        self.sum() / self.len() as f64
    }

    /// Per-column means, as a vector of length `cols`.
    pub fn col_means(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for row in self.rows_iter() {
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        let n = self.rows.max(1) as f64;
        for o in &mut out {
            *o /= n;
        }
        out
    }

    // ------------------------------------------------------------------
    // Slicing and stacking
    // ------------------------------------------------------------------

    /// Copies rows `[start, end)` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.rows()`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "slice_rows out of range");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Builds a new matrix from the given row indices (rows may repeat).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Places `other` to the right of `self`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(other.row(i));
        }
        Ok(Matrix {
            rows: self.rows,
            cols,
            data,
        })
    }

    // ------------------------------------------------------------------
    // Comparisons
    // ------------------------------------------------------------------

    /// Returns `true` if `self` and `other` have the same shape and all
    /// entries differ by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl Default for Matrix {
    /// The empty `0 x 0` matrix.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for (i, row) in self.rows_iter().take(max_rows).enumerate() {
            write!(f, "  row {i}: [")?;
            for (j, x) in row.iter().take(8).enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{x:.4}")?;
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
            .expect("add: shape mismatch")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
            .expect("sub: shape mismatch")
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        self.axpy(-1.0, rhs);
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scaled(s)
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn zeros_ones_filled() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let o = Matrix::ones(3, 2);
        assert!(o.as_slice().iter().all(|&x| x == 1.0));
        let f = Matrix::filled(1, 4, 2.5);
        assert!(f.as_slice().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let i = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_fn_builds_expected_entries() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
        assert_eq!(m.get(1, 2), Some(6.0));
        assert_eq!(m.get(2, 0), None);
    }

    #[test]
    fn set_col_roundtrip() {
        let mut m = Matrix::zeros(3, 2);
        m.set_col(1, &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![1.0, 2.0, 3.0]);
        assert_eq!(m.col(0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::random_uniform(5, 3, -1.0, 1.0, &mut rng());
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_entries() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t[(0, 2)], 5.0);
        assert_eq!(t[(1, 0)], 2.0);
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::random_uniform(4, 7, -2.0, 2.0, &mut rng());
        assert!(a.matmul(&Matrix::identity(7)).approx_eq(&a, 1e-12));
        assert!(Matrix::identity(4).matmul(&a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn matmul_parallel_matches_sequential() {
        // Exceeds PAR_ROW_THRESHOLD so the rayon path is exercised.
        let mut r = rng();
        let a = Matrix::random_uniform(100, 40, -1.0, 1.0, &mut r);
        let b = Matrix::random_uniform(40, 30, -1.0, 1.0, &mut r);
        let par = a.matmul(&b);
        // Sequential reference.
        let mut seq = Matrix::zeros(100, 30);
        for i in 0..100 {
            for j in 0..30 {
                let mut s = 0.0;
                for p in 0..40 {
                    s += a[(i, p)] * b[(p, j)];
                }
                seq[(i, j)] = s;
            }
        }
        assert!(par.approx_eq(&seq, 1e-10));
    }

    #[test]
    fn checked_matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(matches!(
            a.checked_matmul(&b),
            Err(LinalgError::DimensionMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_and_tr_matvec_agree_with_matmul() {
        let mut r = rng();
        let a = Matrix::random_uniform(6, 4, -1.0, 1.0, &mut r);
        let v: Vec<f64> = (0..4).map(|i| i as f64 + 0.5).collect();
        let got = a.matvec(&v);
        let want = a.matmul(&Matrix::col_vector(&v));
        for (i, &g) in got.iter().enumerate() {
            assert!((g - want[(i, 0)]).abs() < 1e-12);
        }
        let u: Vec<f64> = (0..6).map(|i| (i as f64).sin()).collect();
        let got_t = a.tr_matvec(&u);
        let want_t = a.transpose().matvec(&u);
        for (g, w) in got_t.iter().zip(&want_t) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose_and_matvec() {
        let mut r = rng();
        // Exceeds PAR_ROW_THRESHOLD so the rayon path is exercised.
        let a = Matrix::random_uniform(70, 9, -1.0, 1.0, &mut r);
        let b = Matrix::random_uniform(5, 9, -1.0, 1.0, &mut r);
        let got = a.matmul_nt(&b).unwrap();
        assert_eq!(got.shape(), (70, 5));
        assert!(got.approx_eq(&a.matmul(&b.transpose()), 1e-12));
        // Bit-identity with the per-vector path, not just approximate.
        for i in 0..a.rows() {
            assert_eq!(got.row(i), b.matvec(a.row(i)).as_slice());
        }
        assert!(a.matmul_nt(&Matrix::zeros(5, 8)).is_err());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut r = rng();
        let a = Matrix::random_uniform(9, 4, -1.0, 1.0, &mut r);
        let b = Matrix::random_uniform(9, 6, -1.0, 1.0, &mut r);
        let got = a.matmul_tn(&b).unwrap();
        assert_eq!(got.shape(), (4, 6));
        assert!(got.approx_eq(&a.transpose().matmul(&b), 1e-12));
        assert!(a.matmul_tn(&Matrix::zeros(8, 6)).is_err());
    }

    #[test]
    fn col_l1_norms_known() {
        let m = Matrix::from_rows(&[&[1.0, -2.0], &[-3.0, 0.5]]);
        assert_eq!(m.col_l1_norms(), vec![4.0, 2.5]);
    }

    #[test]
    fn col_l2_norms_known() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[4.0, 2.0]]);
        let n = m.col_l2_norms();
        assert!((n[0] - 5.0).abs() < 1e-12);
        assert!((n[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn row_l1_norms_known() {
        let m = Matrix::from_rows(&[&[1.0, -2.0], &[-3.0, 0.5]]);
        assert_eq!(m.row_l1_norms(), vec![3.0, 3.5]);
    }

    #[test]
    fn fro_norm_and_max_abs() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]);
        assert!((m.fro_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn sum_mean_col_means() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.col_means(), vec![2.0, 3.0]);
    }

    #[test]
    fn hadamard_and_zip_map() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, -1.0]]);
        assert_eq!(a.hadamard(&b).unwrap(), Matrix::from_rows(&[&[3.0, -2.0]]));
        assert!(a.hadamard(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn slice_and_select_rows() {
        let m = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let s = m.slice_rows(1, 3);
        assert_eq!(s, Matrix::from_rows(&[&[1.0], &[2.0]]));
        let sel = m.select_rows(&[3, 0, 3]);
        assert_eq!(sel, Matrix::from_rows(&[&[3.0], &[0.0], &[3.0]]));
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(
            a.vstack(&b).unwrap(),
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])
        );
        assert_eq!(
            a.hstack(&b).unwrap(),
            Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]])
        );
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
        assert!(a.hstack(&Matrix::zeros(2, 1)).is_err());
    }

    #[test]
    fn operators() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[0.5, -1.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[1.5, 1.0]]));
        assert_eq!(&a - &b, Matrix::from_rows(&[&[0.5, 3.0]]));
        assert_eq!(&a * 2.0, Matrix::from_rows(&[&[2.0, 4.0]]));
        assert_eq!(-&a, Matrix::from_rows(&[&[-1.0, -2.0]]));
        let mut c = a.clone();
        c += &b;
        assert_eq!(c, Matrix::from_rows(&[&[1.5, 1.0]]));
        c -= &b;
        assert!(c.approx_eq(&a, 1e-12));
    }

    #[test]
    fn random_normal_moments() {
        let m = Matrix::random_normal(200, 200, 1.0, 2.0, &mut rng());
        let mean = m.mean();
        let var = m.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn random_uniform_bounds() {
        let m = Matrix::random_uniform(50, 50, -0.5, 0.5, &mut rng());
        assert!(m.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Matrix::zeros(1, 1));
        assert!(s.contains("Matrix 1x1"));
        let e = format!("{:?}", Matrix::default());
        assert!(!e.is_empty());
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn matrix_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Matrix>();
    }
}
