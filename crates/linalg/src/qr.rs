//! Householder QR factorisation and least-squares solves.
//!
//! Used by the attack library to recover the oracle weight matrix from
//! query inputs/outputs when the number of queries reaches the input
//! dimension (the paper's Section IV observation that `W = U†Ŷ`).

use crate::{LinalgError, Matrix, Result};

/// A Householder QR factorisation of an `m x n` matrix with `m >= n`.
///
/// The factorisation satisfies `A = Q * R` with `Q` an `m x n` matrix with
/// orthonormal columns (thin Q) and `R` an `n x n` upper-triangular matrix.
///
/// # Example
///
/// ```
/// use xbar_linalg::{Matrix, qr::QrDecomposition};
///
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 1.0]]);
/// let qr = QrDecomposition::new(&a)?;
/// let back = qr.q().matmul(&qr.r());
/// assert!(back.approx_eq(&a, 1e-10));
/// # Ok::<(), xbar_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Packed factor: upper triangle holds `R`; the columns below the
    /// diagonal hold the essential parts of the Householder vectors.
    packed: Matrix,
    /// `beta[k]` is the scalar of the k-th Householder reflector
    /// `H_k = I - beta v vᵀ`.
    betas: Vec<f64>,
    /// Diagonal of `R` (stored separately because the packed diagonal holds
    /// the Householder vector head).
    r_diag: Vec<f64>,
}

impl QrDecomposition {
    /// Factors `a` (which must have at least as many rows as columns).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] if `a` has no elements.
    /// * [`LinalgError::Underdetermined`] if `a` has fewer rows than columns.
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.is_empty() {
            return Err(LinalgError::Empty);
        }
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::Underdetermined { rows: m, cols: n });
        }
        let mut packed = a.clone();
        let mut betas = vec![0.0; n];
        let mut r_diag = vec![0.0; n];

        for k in 0..n {
            // Compute the norm of the k-th column below (and including) the
            // diagonal.
            let mut norm = 0.0;
            for i in k..m {
                let v = packed[(i, k)];
                norm += v * v;
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                // Zero column: reflector is the identity.
                betas[k] = 0.0;
                r_diag[k] = 0.0;
                continue;
            }
            let alpha = if packed[(k, k)] >= 0.0 { -norm } else { norm };
            r_diag[k] = alpha;
            // v = x - alpha * e1 (stored in place); normalise so v[0] = 1.
            let v0 = packed[(k, k)] - alpha;
            packed[(k, k)] = v0;
            // beta = 2 / (vᵀv) with v un-normalised.
            let mut vtv = 0.0;
            for i in k..m {
                let v = packed[(i, k)];
                vtv += v * v;
            }
            if vtv == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            betas[k] = 2.0 / vtv;
            // Apply H_k to the remaining columns.
            for j in (k + 1)..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += packed[(i, k)] * packed[(i, j)];
                }
                let s = betas[k] * dot;
                for i in k..m {
                    let vik = packed[(i, k)];
                    packed[(i, j)] -= s * vik;
                }
            }
        }

        Ok(QrDecomposition {
            packed,
            betas,
            r_diag,
        })
    }

    /// The `n x n` upper-triangular factor `R`.
    pub fn r(&self) -> Matrix {
        let n = self.packed.cols();
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            r[(i, i)] = self.r_diag[i];
            for j in (i + 1)..n {
                r[(i, j)] = self.packed[(i, j)];
            }
        }
        r
    }

    /// The thin `m x n` orthonormal factor `Q`.
    pub fn q(&self) -> Matrix {
        let (m, n) = self.packed.shape();
        // Start from the first n columns of the identity and apply the
        // reflectors in reverse order.
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            q[(j, j)] = 1.0;
        }
        for k in (0..n).rev() {
            if self.betas[k] == 0.0 {
                continue;
            }
            for j in 0..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += self.packed[(i, k)] * q[(i, j)];
                }
                let s = self.betas[k] * dot;
                for i in k..m {
                    let vik = self.packed[(i, k)];
                    q[(i, j)] -= s * vik;
                }
            }
        }
        q
    }

    /// Applies `Qᵀ` to a vector of length `m`, returning the first `n`
    /// entries (all that is needed for least squares).
    #[allow(clippy::needless_range_loop)]
    fn qt_apply(&self, b: &[f64]) -> Vec<f64> {
        let (m, n) = self.packed.shape();
        let mut y = b.to_vec();
        for k in 0..n {
            if self.betas[k] == 0.0 {
                continue;
            }
            let mut dot = 0.0;
            for i in k..m {
                dot += self.packed[(i, k)] * y[i];
            }
            let s = self.betas[k] * dot;
            for i in k..m {
                y[i] -= s * self.packed[(i, k)];
            }
        }
        y.truncate(n);
        y
    }

    /// Solves the least-squares problem `min_x ‖A x - b‖₂`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `b.len()` differs from the
    ///   number of rows of the factored matrix.
    /// * [`LinalgError::Singular`] if `R` has a (numerically) zero diagonal
    ///   entry, i.e. the matrix is rank deficient.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.packed.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "qr_solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let y = self.qt_apply(b);
        // Rank decision: a diagonal entry of R below this relative threshold
        // marks the matrix as numerically rank deficient.
        let dmax = self.r_diag.iter().fold(0.0_f64, |mx, d| mx.max(d.abs()));
        let tol = (m.max(n) as f64) * f64::EPSILON * dmax.max(f64::MIN_POSITIVE);
        // Back substitution R x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.packed[(i, j)] * x[j];
            }
            let d = self.r_diag[i];
            if d.abs() <= tol {
                return Err(LinalgError::Singular);
            }
            x[i] = s / d;
        }
        Ok(x)
    }

    /// Solves `min_X ‖A X - B‖_F` column-by-column.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QrDecomposition::solve`], applied per column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let (m, n) = self.packed.shape();
        if b.rows() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "qr_solve_matrix",
                lhs: (m, n),
                rhs: b.shape(),
            });
        }
        let mut x = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let xj = self.solve(&col)?;
            x.set_col(j, &xj);
        }
        Ok(x)
    }
}

/// Convenience wrapper: least-squares solve `min_x ‖A x - b‖₂` via QR.
///
/// # Errors
///
/// See [`QrDecomposition::new`] and [`QrDecomposition::solve`].
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    QrDecomposition::new(a)?.solve(b)
}

/// Convenience wrapper: least-squares solve with a matrix right-hand side.
///
/// This is the computation behind the paper's Section IV remark that with
/// `Q >= N` independent queries the oracle weight matrix is recoverable as
/// `Wᵀ = U† Ŷ` — see `xbar_core::recovery`.
///
/// # Errors
///
/// See [`QrDecomposition::new`] and [`QrDecomposition::solve_matrix`].
pub fn lstsq_matrix(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    QrDecomposition::new(a)?.solve_matrix(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn qr_reconstructs_square() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]);
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(qr.q().matmul(&qr.r()).approx_eq(&a, 1e-10));
    }

    #[test]
    fn qr_reconstructs_tall_random() {
        let a = Matrix::random_uniform(20, 7, -3.0, 3.0, &mut rng());
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(qr.q().matmul(&qr.r()).approx_eq(&a, 1e-9));
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = Matrix::random_uniform(15, 6, -1.0, 1.0, &mut rng());
        let q = QrDecomposition::new(&a).unwrap().q();
        let qtq = q.transpose().matmul(&q);
        assert!(qtq.approx_eq(&Matrix::identity(6), 1e-9));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::random_uniform(10, 5, -1.0, 1.0, &mut rng());
        let r = QrDecomposition::new(&a).unwrap().r();
        for i in 0..5 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0, "R[{i},{j}] must be zero");
            }
        }
    }

    #[test]
    fn solve_square_exact() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        // x = [1, 2] -> b = [4, 7]
        let x = lstsq(&a, &[4.0, 7.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn solve_overdetermined_recovers_planted_solution() {
        let mut r = rng();
        let a = Matrix::random_uniform(50, 8, -1.0, 1.0, &mut r);
        let x_true: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        let b = a.matvec(&x_true);
        let x = lstsq(&a, &b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "got {got}, want {want}");
        }
    }

    #[test]
    fn solve_matrix_right_hand_side() {
        let mut r = rng();
        let a = Matrix::random_uniform(30, 5, -1.0, 1.0, &mut r);
        let x_true = Matrix::random_uniform(5, 3, -2.0, 2.0, &mut r);
        let b = a.matmul(&x_true);
        let x = lstsq_matrix(&a, &b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-8));
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_columns() {
        let mut r = rng();
        let a = Matrix::random_uniform(25, 4, -1.0, 1.0, &mut r);
        let b: Vec<f64> = (0..25).map(|i| (i as f64).cos()).collect();
        let x = lstsq(&a, &b).unwrap();
        let ax = a.matvec(&x);
        let resid: Vec<f64> = b.iter().zip(&ax).map(|(&bi, &ai)| bi - ai).collect();
        // Aᵀ r ≈ 0 is the normal-equation optimality condition.
        let at_r = a.tr_matvec(&resid);
        for v in at_r {
            assert!(v.abs() < 1e-8, "normal equations violated: {v}");
        }
    }

    #[test]
    fn underdetermined_rejected() {
        let a = Matrix::zeros(2, 5);
        assert!(matches!(
            QrDecomposition::new(&a),
            Err(LinalgError::Underdetermined { rows: 2, cols: 5 })
        ));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            QrDecomposition::new(&Matrix::default()),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn singular_detected_in_solve() {
        // Second column is a multiple of the first -> rank deficient.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(matches!(
            qr.solve(&[1.0, 2.0, 3.0]),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let a = Matrix::identity(3);
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(qr.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn zero_column_handled() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0], &[0.0, 3.0]]);
        // Factorisation itself must not panic even though rank deficient.
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(qr.q().matmul(&qr.r()).approx_eq(&a, 1e-10));
    }
}
