//! Singular value decomposition via one-sided Jacobi rotations, and the
//! Moore–Penrose pseudoinverse built on it.
//!
//! The paper's Section IV notes that when the attacker's queries span the
//! input space, the oracle weights follow from `W = U† Ŷ`. [`pinv`] is the
//! `†` in that equation; `xbar-core`'s `recovery` module uses it.

use crate::{LinalgError, Matrix, Result};

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 60;

/// A (thin) singular value decomposition `A = U Σ Vᵀ`.
///
/// For an `m x n` input with `k = min(m, n)`, `u` is `m x k`, `singular_values`
/// has length `k` (non-negative, descending), and `v` is `n x k`.
///
/// # Example
///
/// ```
/// use xbar_linalg::{Matrix, svd::Svd};
///
/// let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]]);
/// let svd = Svd::new(&a)?;
/// assert!((svd.singular_values()[0] - 3.0).abs() < 1e-10);
/// assert!((svd.singular_values()[1] - 2.0).abs() < 1e-10);
/// # Ok::<(), xbar_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    u: Matrix,
    singular_values: Vec<f64>,
    v: Matrix,
}

impl Svd {
    /// Computes the thin SVD of `a` using one-sided Jacobi rotations.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] if `a` has no elements.
    /// * [`LinalgError::NoConvergence`] if the Jacobi sweeps fail to
    ///   orthogonalise the columns (does not happen for well-scaled inputs).
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.is_empty() {
            return Err(LinalgError::Empty);
        }
        if a.rows() >= a.cols() {
            Self::one_sided_jacobi(a)
        } else {
            // SVD of Aᵀ = U Σ Vᵀ  =>  A = V Σ Uᵀ.
            let t = Self::one_sided_jacobi(&a.transpose())?;
            Ok(Svd {
                u: t.v,
                singular_values: t.singular_values,
                v: t.u,
            })
        }
    }

    /// Core one-sided Jacobi algorithm, requires `rows >= cols`.
    fn one_sided_jacobi(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        debug_assert!(m >= n);
        // Work on columns of `u`, accumulate rotations in `v`.
        let mut u = a.clone();
        let mut v = Matrix::identity(n);
        let eps = f64::EPSILON * (m as f64).sqrt();

        let mut converged = false;
        for _ in 0..MAX_SWEEPS {
            let mut off = 0.0_f64;
            for p in 0..n {
                for q in (p + 1)..n {
                    // Column inner products.
                    let mut alpha = 0.0;
                    let mut beta = 0.0;
                    let mut gamma = 0.0;
                    for i in 0..m {
                        let up = u[(i, p)];
                        let uq = u[(i, q)];
                        alpha += up * up;
                        beta += uq * uq;
                        gamma += up * uq;
                    }
                    if gamma.abs() <= eps * (alpha * beta).sqrt() || gamma == 0.0 {
                        continue;
                    }
                    off = off.max(gamma.abs() / (alpha * beta).sqrt().max(f64::MIN_POSITIVE));
                    // Jacobi rotation zeroing the (p, q) inner product.
                    let zeta = (beta - alpha) / (2.0 * gamma);
                    let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    for i in 0..m {
                        let up = u[(i, p)];
                        let uq = u[(i, q)];
                        u[(i, p)] = c * up - s * uq;
                        u[(i, q)] = s * up + c * uq;
                    }
                    for i in 0..n {
                        let vp = v[(i, p)];
                        let vq = v[(i, q)];
                        v[(i, p)] = c * vp - s * vq;
                        v[(i, q)] = s * vp + c * vq;
                    }
                }
            }
            if off <= eps {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(LinalgError::NoConvergence {
                iterations: MAX_SWEEPS,
            });
        }

        // Extract singular values as column norms; normalise U's columns.
        let mut sv: Vec<(f64, usize)> = (0..n)
            .map(|j| {
                let norm: f64 = (0..m).map(|i| u[(i, j)] * u[(i, j)]).sum::<f64>().sqrt();
                (norm, j)
            })
            .collect();
        sv.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

        let mut u_sorted = Matrix::zeros(m, n);
        let mut v_sorted = Matrix::zeros(n, n);
        let mut singular_values = Vec::with_capacity(n);
        for (dst, &(norm, src)) in sv.iter().enumerate() {
            singular_values.push(norm);
            if norm > 0.0 {
                for i in 0..m {
                    u_sorted[(i, dst)] = u[(i, src)] / norm;
                }
            }
            for i in 0..n {
                v_sorted[(i, dst)] = v[(i, src)];
            }
        }

        Ok(Svd {
            u: u_sorted,
            singular_values,
            v: v_sorted,
        })
    }

    /// The left singular vectors (`m x k`, orthonormal columns for nonzero
    /// singular values).
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// The singular values in descending order.
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }

    /// The right singular vectors (`n x k`, orthonormal columns).
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Reconstructs the original matrix `U Σ Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let k = self.singular_values.len();
        let mut us = self.u.clone();
        for j in 0..k {
            let s = self.singular_values[j];
            for i in 0..us.rows() {
                us[(i, j)] *= s;
            }
        }
        us.matmul(&self.v.transpose())
    }

    /// Numerical rank at tolerance `tol` (singular values strictly greater
    /// than `tol` count).
    pub fn rank(&self, tol: f64) -> usize {
        self.singular_values.iter().filter(|&&s| s > tol).count()
    }

    /// The default rank tolerance: `max(m, n) · ε · σ_max`.
    pub fn default_tol(&self, rows: usize, cols: usize) -> f64 {
        let smax = self.singular_values.first().copied().unwrap_or(0.0);
        rows.max(cols) as f64 * f64::EPSILON * smax
    }

    /// Condition number `σ_max / σ_min`, or `f64::INFINITY` when singular.
    pub fn condition_number(&self) -> f64 {
        match (self.singular_values.first(), self.singular_values.last()) {
            (Some(&max), Some(&min)) if min > 0.0 => max / min,
            _ => f64::INFINITY,
        }
    }

    /// The Moore–Penrose pseudoinverse `V Σ⁺ Uᵀ`, truncating singular values
    /// at `tol`.
    pub fn pinv_with_tol(&self, tol: f64) -> Matrix {
        let k = self.singular_values.len();
        // V * Σ⁺.
        let mut vs = self.v.clone();
        for j in 0..k {
            let s = self.singular_values[j];
            let inv = if s > tol { 1.0 / s } else { 0.0 };
            for i in 0..vs.rows() {
                vs[(i, j)] *= inv;
            }
        }
        vs.matmul(&self.u.transpose())
    }
}

/// Computes the Moore–Penrose pseudoinverse of `a` with the default
/// tolerance `max(m, n) · ε · σ_max`.
///
/// # Errors
///
/// See [`Svd::new`].
///
/// # Example
///
/// ```
/// use xbar_linalg::{Matrix, svd::pinv};
///
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]]);
/// let p = pinv(&a)?;
/// // A⁺ A = I for full-column-rank A.
/// assert!(p.matmul(&a).approx_eq(&Matrix::identity(2), 1e-10));
/// # Ok::<(), xbar_linalg::LinalgError>(())
/// ```
pub fn pinv(a: &Matrix) -> Result<Matrix> {
    let svd = Svd::new(a)?;
    let tol = svd.default_tol(a.rows(), a.cols());
    Ok(svd.pinv_with_tol(tol))
}

/// Numerical rank of `a` at the default tolerance.
///
/// # Errors
///
/// See [`Svd::new`].
pub fn rank(a: &Matrix) -> Result<usize> {
    let svd = Svd::new(a)?;
    let tol = svd.default_tol(a.rows(), a.cols());
    Ok(svd.rank(tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(17)
    }

    #[test]
    fn diagonal_singular_values() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -2.0]]);
        let svd = Svd::new(&a).unwrap();
        assert!((svd.singular_values()[0] - 3.0).abs() < 1e-10);
        assert!((svd.singular_values()[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruct_tall() {
        let a = Matrix::random_uniform(12, 5, -2.0, 2.0, &mut rng());
        let svd = Svd::new(&a).unwrap();
        assert!(svd.reconstruct().approx_eq(&a, 1e-9));
    }

    #[test]
    fn reconstruct_wide() {
        let a = Matrix::random_uniform(4, 9, -2.0, 2.0, &mut rng());
        let svd = Svd::new(&a).unwrap();
        assert!(svd.reconstruct().approx_eq(&a, 1e-9));
    }

    #[test]
    fn u_and_v_orthonormal() {
        let a = Matrix::random_uniform(10, 6, -1.0, 1.0, &mut rng());
        let svd = Svd::new(&a).unwrap();
        let utu = svd.u().transpose().matmul(svd.u());
        assert!(utu.approx_eq(&Matrix::identity(6), 1e-9));
        let vtv = svd.v().transpose().matmul(svd.v());
        assert!(vtv.approx_eq(&Matrix::identity(6), 1e-9));
    }

    #[test]
    fn singular_values_descending_nonnegative() {
        let a = Matrix::random_uniform(8, 8, -1.0, 1.0, &mut rng());
        let sv = Svd::new(&a).unwrap().singular_values().to_vec();
        for w in sv.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(sv.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn rank_of_rank_deficient_matrix() {
        // Outer product -> rank 1.
        let u = Matrix::col_vector(&[1.0, 2.0, 3.0]);
        let v = Matrix::row_vector(&[4.0, 5.0]);
        let a = u.matmul(&v);
        assert_eq!(rank(&a).unwrap(), 1);
        assert_eq!(rank(&Matrix::identity(4)).unwrap(), 4);
    }

    #[test]
    fn pinv_moore_penrose_conditions() {
        let a = Matrix::random_uniform(9, 4, -1.0, 1.0, &mut rng());
        let p = pinv(&a).unwrap();
        // 1. A A⁺ A = A
        assert!(a.matmul(&p).matmul(&a).approx_eq(&a, 1e-8));
        // 2. A⁺ A A⁺ = A⁺
        assert!(p.matmul(&a).matmul(&p).approx_eq(&p, 1e-8));
        // 3. (A A⁺)ᵀ = A A⁺
        let ap = a.matmul(&p);
        assert!(ap.transpose().approx_eq(&ap, 1e-8));
        // 4. (A⁺ A)ᵀ = A⁺ A
        let pa = p.matmul(&a);
        assert!(pa.transpose().approx_eq(&pa, 1e-8));
    }

    #[test]
    fn pinv_of_rank_deficient_matrix_is_stable() {
        let u = Matrix::col_vector(&[1.0, 2.0]);
        let v = Matrix::row_vector(&[1.0, 1.0, 1.0]);
        let a = u.matmul(&v); // rank 1, 2x3
        let p = pinv(&a).unwrap();
        assert!(a.matmul(&p).matmul(&a).approx_eq(&a, 1e-9));
        assert!(p.max_abs().is_finite());
    }

    #[test]
    fn pinv_inverts_full_rank_square() {
        let mut r = rng();
        let a = Matrix::random_uniform(6, 6, -1.0, 1.0, &mut r);
        let p = pinv(&a).unwrap();
        assert!(a.matmul(&p).approx_eq(&Matrix::identity(6), 1e-8));
    }

    #[test]
    fn lstsq_via_pinv_recovers_planted_solution() {
        // The Section IV recovery argument: rows of U are queries, columns of
        // X are unknown weight rows; with rows >= cols, X = U† B exactly.
        let mut r = rng();
        let u = Matrix::random_uniform(20, 8, 0.0, 1.0, &mut r);
        let w = Matrix::random_uniform(8, 3, -1.0, 1.0, &mut r);
        let b = u.matmul(&w);
        let w_rec = pinv(&u).unwrap().matmul(&b);
        assert!(w_rec.approx_eq(&w, 1e-8));
    }

    #[test]
    fn condition_number() {
        let a = Matrix::from_diag(&[10.0, 1.0]);
        let svd = Svd::new(&a).unwrap();
        assert!((svd.condition_number() - 10.0).abs() < 1e-9);
        let singular = Matrix::from_diag(&[1.0, 0.0]);
        assert!(Svd::new(&singular)
            .unwrap()
            .condition_number()
            .is_infinite());
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            Svd::new(&Matrix::default()),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn zero_matrix_handled() {
        let a = Matrix::zeros(3, 3);
        let svd = Svd::new(&a).unwrap();
        assert!(svd.singular_values().iter().all(|&s| s == 0.0));
        let p = svd.pinv_with_tol(1e-12);
        assert!(p.approx_eq(&Matrix::zeros(3, 3), 1e-12));
    }
}
