//! Slice-level vector kernels.
//!
//! These free functions operate directly on `&[f64]` so that hot loops in
//! the crossbar simulator and the attack code can avoid allocating
//! [`crate::Matrix`] wrappers.

/// Dot product of two slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place.
#[inline]
pub fn scale(x: &mut [f64], alpha: f64) {
    for v in x {
        *v *= alpha;
    }
}

/// Euclidean (2-) norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// 1-norm (sum of absolute values).
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Infinity norm (largest absolute value), `0.0` for the empty slice.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// Index of the largest element. Ties resolve to the first occurrence.
///
/// # Panics
///
/// Panics if the slice is empty.
#[inline]
pub fn argmax(x: &[f64]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v > x[best] {
            best = i;
        }
    }
    best
}

/// Index of the smallest element. Ties resolve to the first occurrence.
///
/// # Panics
///
/// Panics if the slice is empty.
#[inline]
pub fn argmin(x: &[f64]) -> usize {
    assert!(!x.is_empty(), "argmin of empty slice");
    let mut best = 0;
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v < x[best] {
            best = i;
        }
    }
    best
}

/// Indices of the `k` largest elements, in descending value order.
///
/// If `k > x.len()` all indices are returned. Ties resolve to lower indices
/// first, making the result deterministic.
pub fn top_k_indices(x: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&a, &b| {
        x[b].partial_cmp(&x[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// Elementwise difference `a - b` into a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Elementwise sum `a + b` into a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// Clamps every element into `[lo, hi]` in place.
#[inline]
pub fn clamp(x: &mut [f64], lo: f64, hi: f64) {
    for v in x {
        *v = v.clamp(lo, hi);
    }
}

/// Mean of a slice.
///
/// # Panics
///
/// Panics if the slice is empty.
#[inline]
pub fn mean(x: &[f64]) -> f64 {
    assert!(!x.is_empty(), "mean of empty slice");
    x.iter().sum::<f64>() / x.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dot")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_known() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn scale_known() {
        let mut x = vec![1.0, -2.0];
        scale(&mut x, -3.0);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn norms_known() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm1(&[1.0, -2.0, 3.0]), 6.0);
        assert_eq!(norm_inf(&[1.0, -5.0, 3.0]), 5.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn argmax_argmin_known() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), 1);
        assert_eq!(argmin(&[1.0, 3.0, -2.0]), 2);
        // Ties resolve to the first occurrence.
        assert_eq!(argmax(&[2.0, 2.0]), 0);
        assert_eq!(argmin(&[2.0, 2.0]), 0);
    }

    #[test]
    fn top_k_known() {
        let x = [0.1, 0.9, 0.5, 0.9, 0.0];
        assert_eq!(top_k_indices(&x, 3), vec![1, 3, 2]);
        assert_eq!(top_k_indices(&x, 10).len(), 5);
        assert!(top_k_indices(&x, 0).is_empty());
    }

    #[test]
    fn add_sub_known() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn clamp_known() {
        let mut x = vec![-1.0, 0.5, 2.0];
        clamp(&mut x, 0.0, 1.0);
        assert_eq!(x, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn mean_known() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }
}
