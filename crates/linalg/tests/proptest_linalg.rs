//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use xbar_linalg::{cholesky, lu, qr, svd, vec_ops, Matrix};

/// Strategy: a matrix of the given shape with entries in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: small shape pairs for matmul chains.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..8, 1usize..8, 1usize..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution((m, n, _) in dims(), seed in any::<u64>()) {
        let a = deterministic_matrix(m, n, seed);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_transpose_identity((m, k, n) in dims(), seed in any::<u64>()) {
        // (A B)ᵀ = Bᵀ Aᵀ
        let a = deterministic_matrix(m, k, seed);
        let b = deterministic_matrix(k, n, seed.wrapping_add(1));
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn matmul_distributes_over_addition((m, k, n) in dims(), seed in any::<u64>()) {
        let a = deterministic_matrix(m, k, seed);
        let b = deterministic_matrix(k, n, seed.wrapping_add(1));
        let c = deterministic_matrix(k, n, seed.wrapping_add(2));
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(lhs.approx_eq(&rhs, 1e-8));
    }

    #[test]
    fn col_l1_norms_are_triangle_bounded(a in matrix(5, 4), b in matrix(5, 4)) {
        // ‖(A+B)[:,j]‖₁ <= ‖A[:,j]‖₁ + ‖B[:,j]‖₁
        let sum = (&a + &b).col_l1_norms();
        let na = a.col_l1_norms();
        let nb = b.col_l1_norms();
        for j in 0..4 {
            prop_assert!(sum[j] <= na[j] + nb[j] + 1e-12);
        }
    }

    #[test]
    fn col_l1_norms_scale_absolutely(a in matrix(4, 6), s in -5.0f64..5.0) {
        let scaled = a.scaled(s).col_l1_norms();
        let base = a.col_l1_norms();
        for j in 0..6 {
            prop_assert!((scaled[j] - s.abs() * base[j]).abs() < 1e-9);
        }
    }

    #[test]
    fn dot_is_symmetric(v in prop::collection::vec(-10.0f64..10.0, 1..30)) {
        let w: Vec<f64> = v.iter().rev().cloned().collect();
        prop_assert!((vec_ops::dot(&v, &w) - vec_ops::dot(&w, &v)).abs() < 1e-9);
    }

    #[test]
    fn norm2_cauchy_schwarz(
        v in prop::collection::vec(-10.0f64..10.0, 1..20),
        seed in any::<u64>(),
    ) {
        let w = deterministic_matrix(1, v.len(), seed).into_vec();
        let lhs = vec_ops::dot(&v, &w).abs();
        let rhs = vec_ops::norm2(&v) * vec_ops::norm2(&w);
        prop_assert!(lhs <= rhs + 1e-9);
    }

    #[test]
    fn qr_reconstructs(seed in any::<u64>(), n in 1usize..6, extra in 0usize..6) {
        let a = deterministic_matrix(n + extra, n, seed);
        let qr = qr::QrDecomposition::new(&a).unwrap();
        prop_assert!(qr.q().matmul(&qr.r()).approx_eq(&a, 1e-8));
    }

    #[test]
    fn lu_solve_roundtrips(seed in any::<u64>(), n in 1usize..7) {
        let mut a = deterministic_matrix(n, n, seed);
        // Diagonal dominance guarantees invertibility.
        for i in 0..n {
            a[(i, i)] += 20.0 * (n as f64);
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let b = a.matvec(&x_true);
        let x = lu::solve(&a, &b).unwrap();
        for (g, w) in x.iter().zip(&x_true) {
            prop_assert!((g - w).abs() < 1e-7);
        }
    }

    #[test]
    fn cholesky_solve_roundtrips(seed in any::<u64>(), n in 1usize..7) {
        let m = deterministic_matrix(n, n, seed);
        let mut spd = m.matmul(&m.transpose());
        for i in 0..n {
            spd[(i, i)] += 1.0 + n as f64;
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 1.5).collect();
        let b = spd.matvec(&x_true);
        let x = cholesky::CholeskyDecomposition::new(&spd).unwrap().solve(&b).unwrap();
        for (g, w) in x.iter().zip(&x_true) {
            prop_assert!((g - w).abs() < 1e-6);
        }
    }

    #[test]
    fn svd_reconstructs_and_pinv_is_consistent(seed in any::<u64>(), m in 1usize..7, n in 1usize..7) {
        let a = deterministic_matrix(m, n, seed);
        let s = svd::Svd::new(&a).unwrap();
        prop_assert!(s.reconstruct().approx_eq(&a, 1e-7));
        let p = s.pinv_with_tol(s.default_tol(m, n));
        // First Moore-Penrose condition.
        prop_assert!(a.matmul(&p).matmul(&a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn top_k_indices_are_sorted_by_value(v in prop::collection::vec(-10.0f64..10.0, 1..30), k in 1usize..10) {
        let idx = vec_ops::top_k_indices(&v, k);
        prop_assert_eq!(idx.len(), k.min(v.len()));
        for w in idx.windows(2) {
            prop_assert!(v[w[0]] >= v[w[1]]);
        }
        // The first index really is the argmax.
        prop_assert_eq!(idx[0], vec_ops::argmax(&v));
    }
}

/// Deterministic pseudo-random matrix from a seed, avoiding proptest's
/// shrinking over huge Vec inputs for the larger shapes.
fn deterministic_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-3.0..3.0))
}
