//! Output/hidden activation functions.

use serde::{Deserialize, Serialize};

/// An activation function applied to a layer's pre-activations.
///
/// The paper's two configurations use [`Activation::Identity`] (the
/// "linear" output) and [`Activation::Softmax`]. The others are standard
/// elementwise choices used by the multi-layer extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// `f(s) = s` — the paper's "linear" (no activation) output.
    Identity,
    /// `f(s) = max(0, s)`.
    Relu,
    /// `f(s) = 1 / (1 + e^{-s})`.
    Sigmoid,
    /// `f(s) = tanh(s)`.
    Tanh,
    /// Row-wise softmax; only meaningful as an output activation.
    Softmax,
}

impl Activation {
    /// A short lowercase name for error messages and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Activation::Identity => "identity",
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Softmax => "softmax",
        }
    }

    /// Whether the activation is elementwise (softmax is not).
    pub fn is_elementwise(&self) -> bool {
        !matches!(self, Activation::Softmax)
    }

    /// Applies the activation in place to one pre-activation row.
    pub fn apply_row(&self, s: &mut [f64]) {
        match self {
            Activation::Identity => {}
            Activation::Relu => {
                for v in s.iter_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            Activation::Sigmoid => {
                for v in s.iter_mut() {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
            }
            Activation::Tanh => {
                for v in s.iter_mut() {
                    *v = v.tanh();
                }
            }
            Activation::Softmax => softmax_row(s),
        }
    }

    /// Elementwise derivative `f'(s)` evaluated at the pre-activation `s`.
    ///
    /// # Panics
    ///
    /// Panics for [`Activation::Softmax`], whose Jacobian is not
    /// elementwise; softmax backward passes are fused with cross-entropy in
    /// [`crate::loss`].
    pub fn derivative(&self, s: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if s > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => {
                let f = 1.0 / (1.0 + (-s).exp());
                f * (1.0 - f)
            }
            Activation::Tanh => {
                let t = s.tanh();
                1.0 - t * t
            }
            Activation::Softmax => {
                panic!("softmax has no elementwise derivative; use the fused CE rule")
            }
        }
    }
}

/// Numerically stable in-place softmax of one row.
pub fn softmax_row(s: &mut [f64]) {
    if s.is_empty() {
        return;
    }
    let max = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in s.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in s.iter_mut() {
        *v /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let mut s = vec![1.0, -2.0];
        Activation::Identity.apply_row(&mut s);
        assert_eq!(s, vec![1.0, -2.0]);
        assert_eq!(Activation::Identity.derivative(5.0), 1.0);
    }

    #[test]
    fn relu_clips_negatives() {
        let mut s = vec![1.0, -2.0, 0.0];
        Activation::Relu.apply_row(&mut s);
        assert_eq!(s, vec![1.0, 0.0, 0.0]);
        assert_eq!(Activation::Relu.derivative(2.0), 1.0);
        assert_eq!(Activation::Relu.derivative(-2.0), 0.0);
    }

    #[test]
    fn sigmoid_values_and_derivative() {
        let mut s = vec![0.0];
        Activation::Sigmoid.apply_row(&mut s);
        assert!((s[0] - 0.5).abs() < 1e-12);
        assert!((Activation::Sigmoid.derivative(0.0) - 0.25).abs() < 1e-12);
        // Derivative matches finite differences.
        let h = 1e-6;
        for &x in &[-2.0, -0.3, 0.7, 3.0] {
            let mut a = vec![x + h];
            let mut b = vec![x - h];
            Activation::Sigmoid.apply_row(&mut a);
            Activation::Sigmoid.apply_row(&mut b);
            let fd = (a[0] - b[0]) / (2.0 * h);
            assert!((fd - Activation::Sigmoid.derivative(x)).abs() < 1e-6);
        }
    }

    #[test]
    fn tanh_derivative_matches_finite_differences() {
        let h = 1e-6;
        for &x in &[-1.5_f64, 0.0, 0.4, 2.0] {
            let fd = ((x + h).tanh() - (x - h).tanh()) / (2.0 * h);
            assert!((fd - Activation::Tanh.derivative(x)).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_row_sums_to_one_and_is_monotone() {
        let mut s = vec![1.0, 2.0, 3.0];
        softmax_row(&mut s);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[0] < s[1] && s[1] < s[2]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = vec![1.0, 2.0, 3.0];
        let mut b = vec![1001.0, 1002.0, 1003.0];
        softmax_row(&mut a);
        softmax_row(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
        // Huge magnitudes must not overflow.
        let mut c = vec![1e300_f64.ln(), 0.0];
        softmax_row(&mut c);
        assert!(c.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_empty_row_is_noop() {
        let mut s: Vec<f64> = vec![];
        softmax_row(&mut s);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "softmax")]
    fn softmax_derivative_panics() {
        let _ = Activation::Softmax.derivative(0.0);
    }

    #[test]
    fn names_and_elementwise_flags() {
        assert_eq!(Activation::Softmax.name(), "softmax");
        assert!(!Activation::Softmax.is_elementwise());
        assert!(Activation::Identity.is_elementwise());
    }
}
