use std::fmt;

/// Errors produced by network construction and training.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// Input feature count does not match the network's input dimension.
    InputDimMismatch {
        /// The network's expected input dimension.
        expected: usize,
        /// The supplied dimension.
        got: usize,
    },
    /// Target dimension does not match the network's output dimension.
    TargetDimMismatch {
        /// The network's output dimension.
        expected: usize,
        /// The supplied dimension.
        got: usize,
    },
    /// The activation/loss pairing has no supported backward rule.
    UnsupportedPairing {
        /// Name of the activation.
        activation: &'static str,
        /// Name of the loss.
        loss: &'static str,
    },
    /// The training set was empty.
    EmptyDataset,
    /// A hyperparameter was outside its valid domain.
    InvalidHyperparameter {
        /// Name of the offending hyperparameter.
        name: &'static str,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::InputDimMismatch { expected, got } => {
                write!(
                    f,
                    "input dimension mismatch: expected {expected}, got {got}"
                )
            }
            NnError::TargetDimMismatch { expected, got } => {
                write!(
                    f,
                    "target dimension mismatch: expected {expected}, got {got}"
                )
            }
            NnError::UnsupportedPairing { activation, loss } => {
                write!(
                    f,
                    "unsupported activation/loss pairing: {activation} with {loss}"
                )
            }
            NnError::EmptyDataset => write!(f, "training requires a non-empty dataset"),
            NnError::InvalidHyperparameter { name } => {
                write!(f, "hyperparameter {name} is outside its valid domain")
            }
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            NnError::InputDimMismatch {
                expected: 2,
                got: 3,
            },
            NnError::TargetDimMismatch {
                expected: 2,
                got: 3,
            },
            NnError::UnsupportedPairing {
                activation: "softmax",
                loss: "mse",
            },
            NnError::EmptyDataset,
            NnError::InvalidHyperparameter { name: "lr" },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
