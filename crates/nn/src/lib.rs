//! # xbar-nn
//!
//! Neural-network substrate for the `xbar-power-attacks` workspace: the
//! single-layer networks the paper attacks, implemented from scratch.
//!
//! The paper's models are `ŷ = f(W u)` (Eq. 4) with two configurations:
//! a **linear** output trained with MSE loss, and a **softmax** output
//! trained with categorical cross-entropy. Both are bias-free by default,
//! matching the crossbar of the paper's Fig. 2 (a bias can be enabled and
//! is then carried as an extra `+1` input column by the crossbar mapping).
//!
//! Modules:
//!
//! * [`activation`] — identity, ReLU, sigmoid, tanh, softmax.
//! * [`loss`] — MSE and categorical cross-entropy, with the supported
//!   activation/loss pairings and their pre-activation deltas.
//! * [`network`] — [`network::SingleLayerNet`]: the paper's model.
//! * [`mlp`] — a multi-layer extension (the paper's stated future work).
//! * [`train`] — minibatch SGD with momentum, weight decay and LR decay.
//! * [`sensitivity`] — `∂L/∂u` input gradients (Eq. 7) and dataset-mean
//!   sensitivity maps, the quantity Table I correlates with the 1-norms.
//! * [`metrics`] — accuracy and confusion matrices.
//!
//! # Example
//!
//! ```
//! use xbar_data::synth::blobs::BlobsConfig;
//! use xbar_nn::activation::Activation;
//! use xbar_nn::loss::Loss;
//! use xbar_nn::network::SingleLayerNet;
//! use xbar_nn::train::{SgdConfig, train};
//! use rand::SeedableRng;
//!
//! let ds = BlobsConfig::new(3, 8).num_samples(120).seed(1).generate();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let mut net = SingleLayerNet::new_random(8, 3, Activation::Softmax, &mut rng);
//! let report = train(&mut net, &ds, Loss::CrossEntropy, &SgdConfig::default(), &mut rng)?;
//! assert!(report.final_loss < report.initial_loss);
//! # Ok::<(), xbar_nn::NnError>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod activation;
mod error;
pub mod loss;
pub mod metrics;
pub mod mlp;
pub mod network;
pub mod sensitivity;
pub mod train;

pub use error::NnError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
