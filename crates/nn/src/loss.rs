//! Loss functions and their backward rules.
//!
//! The paper trains with MSE (linear output) and categorical cross-entropy
//! (softmax output). The backward pass works at the *pre-activation*: for
//! the supported pairings the delta `∂L/∂s` has a closed form, which is
//! also what the input-sensitivity computation (paper Eq. 7) needs, since
//! `∂L/∂u = Wᵀ ∂L/∂s`.

use crate::activation::Activation;
use crate::{NnError, Result};
use serde::{Deserialize, Serialize};
use xbar_linalg::Matrix;

/// Small constant guarding `ln(0)` in cross-entropy.
const LN_EPS: f64 = 1e-12;

/// A training loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error, averaged over outputs *and* batch:
    /// `L = (1/B) Σ_b (1/M) Σ_i (ŷ_bi − y_bi)²`.
    Mse,
    /// Categorical cross-entropy, averaged over the batch:
    /// `L = −(1/B) Σ_b Σ_i y_bi ln ŷ_bi`.
    CrossEntropy,
}

impl Loss {
    /// A short lowercase name for error messages and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Loss::Mse => "mse",
            Loss::CrossEntropy => "crossentropy",
        }
    }

    /// Loss value for a batch of post-activation outputs vs one-hot
    /// targets.
    ///
    /// # Panics
    ///
    /// Panics if the two matrices differ in shape or are empty.
    pub fn value(&self, outputs: &Matrix, targets: &Matrix) -> f64 {
        assert_eq!(outputs.shape(), targets.shape(), "loss: shape mismatch");
        assert!(!outputs.is_empty(), "loss of empty batch");
        let b = outputs.rows() as f64;
        match self {
            Loss::Mse => {
                let m = outputs.cols() as f64;
                let mut total = 0.0;
                for (o_row, t_row) in outputs.rows_iter().zip(targets.rows_iter()) {
                    for (&o, &t) in o_row.iter().zip(t_row) {
                        let d = o - t;
                        total += d * d;
                    }
                }
                total / (b * m)
            }
            Loss::CrossEntropy => {
                let mut total = 0.0;
                for (o_row, t_row) in outputs.rows_iter().zip(targets.rows_iter()) {
                    for (&o, &t) in o_row.iter().zip(t_row) {
                        if t != 0.0 {
                            total -= t * (o.max(LN_EPS)).ln();
                        }
                    }
                }
                total / b
            }
        }
    }

    /// Gradient of the *per-sample* loss with respect to the
    /// post-activation outputs, for one sample.
    ///
    /// (The `1/B` batch averaging is applied by the caller.)
    ///
    /// # Panics
    ///
    /// Panics if the rows differ in length.
    pub fn output_grad_row(&self, outputs: &[f64], targets: &[f64], grad: &mut [f64]) {
        assert_eq!(outputs.len(), targets.len(), "loss grad: length mismatch");
        assert_eq!(outputs.len(), grad.len(), "loss grad: length mismatch");
        match self {
            Loss::Mse => {
                let m = outputs.len() as f64;
                for ((g, &o), &t) in grad.iter_mut().zip(outputs).zip(targets) {
                    *g = 2.0 * (o - t) / m;
                }
            }
            Loss::CrossEntropy => {
                for ((g, &o), &t) in grad.iter_mut().zip(outputs).zip(targets) {
                    *g = if t != 0.0 { -t / o.max(LN_EPS) } else { 0.0 };
                }
            }
        }
    }
}

/// Computes the pre-activation deltas `∂L/∂s` for a batch (`samples x
/// outputs`), given post-activation `outputs`, the `preacts` they came
/// from, one-hot `targets`, and the activation/loss pairing.
///
/// Supported pairings:
///
/// * any elementwise activation with [`Loss::Mse`] — chain rule
///   `∂L/∂s = ∂L/∂ŷ · f'(s)`;
/// * [`Activation::Softmax`] with [`Loss::CrossEntropy`] — the fused rule
///   `∂L/∂s = ŷ − y`.
///
/// The returned deltas are **per-sample** (no `1/B` factor); trainers apply
/// batch averaging.
///
/// # Errors
///
/// * [`NnError::UnsupportedPairing`] for softmax+MSE or
///   elementwise+cross-entropy.
/// * [`NnError::TargetDimMismatch`] if the target width differs from the
///   output width.
pub fn preactivation_deltas(
    outputs: &Matrix,
    preacts: &Matrix,
    targets: &Matrix,
    activation: Activation,
    loss: Loss,
) -> Result<Matrix> {
    if targets.cols() != outputs.cols() || targets.rows() != outputs.rows() {
        return Err(NnError::TargetDimMismatch {
            expected: outputs.cols(),
            got: targets.cols(),
        });
    }
    match (activation, loss) {
        (Activation::Softmax, Loss::CrossEntropy) => Ok(outputs
            .zip_map(targets, |o, t| o - t)
            .expect("shapes match")),
        (Activation::Softmax, Loss::Mse) | (_, Loss::CrossEntropy) => {
            Err(NnError::UnsupportedPairing {
                activation: activation.name(),
                loss: loss.name(),
            })
        }
        (act, Loss::Mse) => {
            let mut deltas = Matrix::zeros(outputs.rows(), outputs.cols());
            let mut grad = vec![0.0; outputs.cols()];
            for i in 0..outputs.rows() {
                loss.output_grad_row(outputs.row(i), targets.row(i), &mut grad);
                let d_row = deltas.row_mut(i);
                for (j, g) in grad.iter().enumerate() {
                    d_row[j] = g * act.derivative(preacts[(i, j)]);
                }
            }
            Ok(deltas)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_value_known() {
        let o = Matrix::from_rows(&[&[1.0, 2.0]]);
        let t = Matrix::from_rows(&[&[0.0, 0.0]]);
        // (1 + 4) / 2 outputs = 2.5
        assert!((Loss::Mse.value(&o, &t) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mse_batch_averaging() {
        let o = Matrix::from_rows(&[&[1.0], &[3.0]]);
        let t = Matrix::from_rows(&[&[0.0], &[0.0]]);
        // (1 + 9) / 2 samples / 1 output = 5
        assert!((Loss::Mse.value(&o, &t) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_value_known() {
        let o = Matrix::from_rows(&[&[0.7, 0.2, 0.1]]);
        let t = Matrix::from_rows(&[&[1.0, 0.0, 0.0]]);
        assert!((Loss::CrossEntropy.value(&o, &t) - (-(0.7_f64.ln()))).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_guards_log_zero() {
        let o = Matrix::from_rows(&[&[0.0, 1.0]]);
        let t = Matrix::from_rows(&[&[1.0, 0.0]]);
        assert!(Loss::CrossEntropy.value(&o, &t).is_finite());
    }

    #[test]
    fn mse_grad_row_known() {
        let mut g = vec![0.0; 2];
        Loss::Mse.output_grad_row(&[1.0, 2.0], &[0.0, 0.0], &mut g);
        assert_eq!(g, vec![1.0, 2.0]); // 2(o-t)/M with M=2
    }

    #[test]
    fn softmax_ce_delta_is_output_minus_target() {
        let outputs = Matrix::from_rows(&[&[0.3, 0.7]]);
        let preacts = Matrix::from_rows(&[&[0.0, 0.847]]);
        let targets = Matrix::from_rows(&[&[1.0, 0.0]]);
        let d = preactivation_deltas(
            &outputs,
            &preacts,
            &targets,
            Activation::Softmax,
            Loss::CrossEntropy,
        )
        .unwrap();
        assert!((d[(0, 0)] - (-0.7)).abs() < 1e-12);
        assert!((d[(0, 1)] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn identity_mse_delta_matches_finite_differences() {
        // L(s) = (1/M)Σ (s - t)² with identity activation.
        let preacts = Matrix::from_rows(&[&[0.4, -0.3, 1.2]]);
        let targets = Matrix::from_rows(&[&[1.0, 0.0, 0.0]]);
        let outputs = preacts.clone();
        let d = preactivation_deltas(
            &outputs,
            &preacts,
            &targets,
            Activation::Identity,
            Loss::Mse,
        )
        .unwrap();
        let h = 1e-6;
        for j in 0..3 {
            let mut plus = preacts.clone();
            plus[(0, j)] += h;
            let mut minus = preacts.clone();
            minus[(0, j)] -= h;
            let fd =
                (Loss::Mse.value(&plus, &targets) - Loss::Mse.value(&minus, &targets)) / (2.0 * h);
            assert!((fd - d[(0, j)]).abs() < 1e-6, "output {j}");
        }
    }

    #[test]
    fn sigmoid_mse_delta_matches_finite_differences() {
        let preacts = Matrix::from_rows(&[&[0.4, -0.9]]);
        let targets = Matrix::from_rows(&[&[1.0, 0.0]]);
        let mut outputs = preacts.clone();
        for i in 0..outputs.rows() {
            Activation::Sigmoid.apply_row(outputs.row_mut(i));
        }
        let d = preactivation_deltas(&outputs, &preacts, &targets, Activation::Sigmoid, Loss::Mse)
            .unwrap();
        let h = 1e-6;
        for j in 0..2 {
            let eval = |s: &Matrix| -> f64 {
                let mut o = s.clone();
                for i in 0..o.rows() {
                    Activation::Sigmoid.apply_row(o.row_mut(i));
                }
                Loss::Mse.value(&o, &targets)
            };
            let mut plus = preacts.clone();
            plus[(0, j)] += h;
            let mut minus = preacts.clone();
            minus[(0, j)] -= h;
            let fd = (eval(&plus) - eval(&minus)) / (2.0 * h);
            assert!((fd - d[(0, j)]).abs() < 1e-6, "output {j}");
        }
    }

    #[test]
    fn softmax_ce_delta_matches_finite_differences() {
        let preacts = Matrix::from_rows(&[&[0.5, -0.2, 0.9]]);
        let targets = Matrix::from_rows(&[&[0.0, 1.0, 0.0]]);
        let eval = |s: &Matrix| -> f64 {
            let mut o = s.clone();
            for i in 0..o.rows() {
                Activation::Softmax.apply_row(o.row_mut(i));
            }
            Loss::CrossEntropy.value(&o, &targets)
        };
        let mut outputs = preacts.clone();
        for i in 0..outputs.rows() {
            Activation::Softmax.apply_row(outputs.row_mut(i));
        }
        let d = preactivation_deltas(
            &outputs,
            &preacts,
            &targets,
            Activation::Softmax,
            Loss::CrossEntropy,
        )
        .unwrap();
        let h = 1e-6;
        for j in 0..3 {
            let mut plus = preacts.clone();
            plus[(0, j)] += h;
            let mut minus = preacts.clone();
            minus[(0, j)] -= h;
            let fd = (eval(&plus) - eval(&minus)) / (2.0 * h);
            assert!((fd - d[(0, j)]).abs() < 1e-6, "output {j}");
        }
    }

    #[test]
    fn unsupported_pairings_rejected() {
        let m = Matrix::from_rows(&[&[0.5, 0.5]]);
        assert!(matches!(
            preactivation_deltas(&m, &m, &m, Activation::Softmax, Loss::Mse),
            Err(NnError::UnsupportedPairing { .. })
        ));
        assert!(matches!(
            preactivation_deltas(&m, &m, &m, Activation::Identity, Loss::CrossEntropy),
            Err(NnError::UnsupportedPairing { .. })
        ));
    }

    #[test]
    fn target_shape_validated() {
        let o = Matrix::from_rows(&[&[0.5, 0.5]]);
        let t = Matrix::from_rows(&[&[1.0, 0.0, 0.0]]);
        assert!(matches!(
            preactivation_deltas(&o, &o, &t, Activation::Softmax, Loss::CrossEntropy),
            Err(NnError::TargetDimMismatch { .. })
        ));
    }
}
