//! Classification metrics.

/// Fraction of predictions equal to the labels.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "accuracy: length mismatch");
    assert!(!labels.is_empty(), "accuracy of empty slice");
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / labels.len() as f64
}

/// Confusion matrix: `counts[true][predicted]`.
///
/// # Panics
///
/// Panics if the slices differ in length or any value is `>= num_classes`.
pub fn confusion_matrix(
    predictions: &[usize],
    labels: &[usize],
    num_classes: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "confusion: length mismatch"
    );
    let mut m = vec![vec![0usize; num_classes]; num_classes];
    for (&p, &l) in predictions.iter().zip(labels) {
        assert!(
            p < num_classes && l < num_classes,
            "class index out of range"
        );
        m[l][p] += 1;
    }
    m
}

/// Per-class recall: `recall[c]` is the fraction of class-`c` samples
/// predicted as `c` (NaN-free: classes with no samples report 0).
pub fn per_class_recall(predictions: &[usize], labels: &[usize], num_classes: usize) -> Vec<f64> {
    let cm = confusion_matrix(predictions, labels, num_classes);
    cm.iter()
        .enumerate()
        .map(|(c, row)| {
            let total: usize = row.iter().sum();
            if total == 0 {
                0.0
            } else {
                row[c] as f64 / total as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_known() {
        assert_eq!(accuracy(&[0, 1, 2, 1], &[0, 1, 1, 1]), 0.75);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
        assert_eq!(accuracy(&[1], &[0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_validates_lengths() {
        let _ = accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn confusion_matrix_known() {
        let cm = confusion_matrix(&[0, 1, 1, 2], &[0, 1, 2, 2], 3);
        assert_eq!(cm[0], vec![1, 0, 0]);
        assert_eq!(cm[1], vec![0, 1, 0]);
        assert_eq!(cm[2], vec![0, 1, 1]);
        let total: usize = cm.iter().flatten().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn per_class_recall_known() {
        let r = per_class_recall(&[0, 1, 1, 2], &[0, 1, 2, 2], 3);
        assert_eq!(r, vec![1.0, 1.0, 0.5]);
        // A class absent from the labels reports zero, not NaN.
        let r = per_class_recall(&[0, 0], &[0, 0], 2);
        assert_eq!(r[1], 0.0);
    }
}
