//! Multi-layer perceptron — the paper's stated future-work extension.
//!
//! The paper attacks single-layer networks and calls out multi-layer
//! models as future work (Sec. V). This module provides that extension so
//! the attack pipeline can be exercised against deeper oracles: a plain
//! MLP with elementwise hidden activations, trained by backpropagation,
//! exposing the same input-gradient interface the attacks need.
//!
//! On a crossbar, each [`DenseLayer`] occupies one crossbar array, and the
//! total power is the sum of the per-layer Eq. 5 terms — which is why the
//! first layer's column 1-norms still dominate the input-dependent power
//! signal (the deeper layers see activations, not raw inputs).

use crate::activation::Activation;
use crate::loss::{preactivation_deltas, Loss};
use crate::train::SgdConfig;
use crate::{NnError, Result};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use xbar_linalg::Matrix;

/// One dense layer of an [`Mlp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    weights: Matrix,
    bias: Vec<f64>,
    activation: Activation,
}

impl DenseLayer {
    /// Creates a layer with fan-in-scaled random uniform weights.
    pub fn new_random<R: Rng + ?Sized>(
        inputs: usize,
        outputs: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        let r = 1.0 / (inputs.max(1) as f64).sqrt();
        DenseLayer {
            weights: Matrix::random_uniform(outputs, inputs, -r, r, rng),
            bias: vec![0.0; outputs],
            activation,
        }
    }

    /// The `outputs x inputs` weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The layer's activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Input dimension.
    pub fn num_inputs(&self) -> usize {
        self.weights.cols()
    }

    /// Output dimension.
    pub fn num_outputs(&self) -> usize {
        self.weights.rows()
    }

    fn preactivation(&self, x: &Matrix) -> Matrix {
        let mut s = x.matmul(&self.weights.transpose());
        for i in 0..s.rows() {
            for (v, b) in s.row_mut(i).iter_mut().zip(&self.bias) {
                *v += b;
            }
        }
        s
    }
}

/// A multi-layer perceptron.
///
/// # Example
///
/// ```
/// use xbar_nn::activation::Activation;
/// use xbar_nn::mlp::Mlp;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mlp = Mlp::new_random(&[8, 16, 3], Activation::Relu, Activation::Softmax, &mut rng)?;
/// assert_eq!(mlp.num_inputs(), 8);
/// assert_eq!(mlp.num_outputs(), 3);
/// # Ok::<(), xbar_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
}

impl Mlp {
    /// Creates an MLP with the given layer widths (`sizes[0]` inputs
    /// through `sizes.last()` outputs), elementwise `hidden` activation,
    /// and the given `output` activation.
    ///
    /// # Errors
    ///
    /// * [`NnError::InvalidHyperparameter`] if fewer than two sizes are
    ///   given or the hidden activation is softmax (not elementwise).
    pub fn new_random<R: Rng + ?Sized>(
        sizes: &[usize],
        hidden: Activation,
        output: Activation,
        rng: &mut R,
    ) -> Result<Self> {
        if sizes.len() < 2 {
            return Err(NnError::InvalidHyperparameter { name: "sizes" });
        }
        if !hidden.is_elementwise() {
            return Err(NnError::InvalidHyperparameter { name: "hidden" });
        }
        let last = sizes.len() - 2;
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i == last { output } else { hidden };
                DenseLayer::new_random(w[0], w[1], act, rng)
            })
            .collect();
        Ok(Mlp { layers })
    }

    /// The layers, input-side first.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Input dimension.
    pub fn num_inputs(&self) -> usize {
        self.layers.first().map_or(0, DenseLayer::num_inputs)
    }

    /// Output dimension.
    pub fn num_outputs(&self) -> usize {
        self.layers.last().map_or(0, DenseLayer::num_outputs)
    }

    /// The output activation.
    pub fn output_activation(&self) -> Activation {
        self.layers
            .last()
            .map_or(Activation::Identity, DenseLayer::activation)
    }

    /// Forward pass returning per-layer `(preactivations, outputs)` caches;
    /// the last cache entry's outputs are the network outputs.
    fn forward_cached(&self, inputs: &Matrix) -> Result<Vec<(Matrix, Matrix)>> {
        if inputs.cols() != self.num_inputs() {
            return Err(NnError::InputDimMismatch {
                expected: self.num_inputs(),
                got: inputs.cols(),
            });
        }
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut x = inputs.clone();
        for layer in &self.layers {
            let s = layer.preactivation(&x);
            let mut a = s.clone();
            for i in 0..a.rows() {
                layer.activation.apply_row(a.row_mut(i));
            }
            x = a.clone();
            caches.push((s, a));
        }
        Ok(caches)
    }

    /// Network outputs for a batch.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputDimMismatch`] on a feature-count mismatch.
    pub fn forward_batch(&self, inputs: &Matrix) -> Result<Matrix> {
        Ok(self
            .forward_cached(inputs)?
            .pop()
            .map(|(_, a)| a)
            .unwrap_or_default())
    }

    /// Predicted labels for a batch.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputDimMismatch`] on a feature-count mismatch.
    pub fn predict_batch(&self, inputs: &Matrix) -> Result<Vec<usize>> {
        let out = self.forward_batch(inputs)?;
        Ok((0..out.rows())
            .map(|i| xbar_linalg::vec_ops::argmax(out.row(i)))
            .collect())
    }

    /// Per-layer deltas for a batch, output layer last.
    fn backward_deltas(
        &self,
        inputs: &Matrix,
        targets: &Matrix,
        loss: Loss,
        caches: &[(Matrix, Matrix)],
    ) -> Result<Vec<Matrix>> {
        let _ = inputs;
        let (out_s, out_a) = caches.last().expect("at least one layer");
        let mut deltas = vec![Matrix::default(); self.layers.len()];
        let last = self.layers.len() - 1;
        deltas[last] =
            preactivation_deltas(out_a, out_s, targets, self.layers[last].activation, loss)?;
        for l in (0..last).rev() {
            // δ_l = (δ_{l+1} W_{l+1}) ⊙ f'(s_l)
            let upstream = deltas[l + 1].matmul(self.layers[l + 1].weights());
            let (s_l, _) = &caches[l];
            let act = self.layers[l].activation;
            deltas[l] = Matrix::from_fn(upstream.rows(), upstream.cols(), |i, j| {
                upstream[(i, j)] * act.derivative(s_l[(i, j)])
            });
        }
        Ok(deltas)
    }

    /// Gradient of the per-sample loss w.r.t. each input row
    /// (`samples x inputs`) — the MLP counterpart of
    /// [`crate::sensitivity::batch_input_gradients`], used to run FGSM
    /// against deep oracles.
    ///
    /// # Errors
    ///
    /// Propagates forward/backward dimension and pairing errors.
    pub fn batch_input_gradients(
        &self,
        inputs: &Matrix,
        targets: &Matrix,
        loss: Loss,
    ) -> Result<Matrix> {
        let caches = self.forward_cached(inputs)?;
        let deltas = self.backward_deltas(inputs, targets, loss, &caches)?;
        Ok(deltas[0].matmul(self.layers[0].weights()))
    }

    /// Sum over layers of the per-layer weight-column 1-norms, padded to
    /// the widest layer — the multi-layer analogue of the power-leaked
    /// quantity (each crossbar array contributes its own Eq. 5 term).
    pub fn per_layer_column_l1_norms(&self) -> Vec<Vec<f64>> {
        self.layers
            .iter()
            .map(|l| l.weights.col_l1_norms())
            .collect()
    }
}

/// Trains an MLP with minibatch SGD.
///
/// # Errors
///
/// Mirrors [`crate::train::train_on_matrices`]'s error conditions.
pub fn train_mlp<R: Rng + ?Sized>(
    mlp: &mut Mlp,
    inputs: &Matrix,
    targets: &Matrix,
    loss: Loss,
    cfg: &SgdConfig,
    rng: &mut R,
) -> Result<f64> {
    if inputs.rows() == 0 {
        return Err(NnError::EmptyDataset);
    }
    if cfg.batch_size == 0 {
        return Err(NnError::InvalidHyperparameter { name: "batch_size" });
    }
    let n = inputs.rows();
    let mut lr = cfg.learning_rate;
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..cfg.epochs {
        if cfg.shuffle {
            order.shuffle(rng);
        }
        for chunk in order.chunks(cfg.batch_size) {
            let x = inputs.select_rows(chunk);
            let t = targets.select_rows(chunk);
            let caches = mlp.forward_cached(&x)?;
            let deltas = mlp.backward_deltas(&x, &t, loss, &caches)?;
            let b = chunk.len() as f64;
            for l in 0..mlp.layers.len() {
                let layer_input = if l == 0 { &x } else { &caches[l - 1].1 };
                let mut grad = deltas[l].transpose().matmul(layer_input);
                grad.scale_inplace(1.0 / b);
                if cfg.weight_decay > 0.0 {
                    grad.axpy(cfg.weight_decay, &mlp.layers[l].weights);
                }
                mlp.layers[l].weights.axpy(-lr, &grad);
                for (j, b_j) in mlp.layers[l].bias.iter_mut().enumerate() {
                    let g: f64 = deltas[l].col(j).iter().sum::<f64>() / b;
                    *b_j -= lr * g;
                }
            }
        }
        lr *= cfg.lr_decay;
    }
    let outputs = mlp.forward_batch(inputs)?;
    Ok(loss.value(&outputs, targets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use xbar_data::synth::blobs::BlobsConfig;

    #[test]
    fn construction_validates() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(Mlp::new_random(&[4], Activation::Relu, Activation::Softmax, &mut rng).is_err());
        assert!(
            Mlp::new_random(&[4, 3], Activation::Softmax, Activation::Softmax, &mut rng).is_err()
        );
        let mlp =
            Mlp::new_random(&[4, 8, 3], Activation::Relu, Activation::Softmax, &mut rng).unwrap();
        assert_eq!(mlp.layers().len(), 2);
        assert_eq!(mlp.num_inputs(), 4);
        assert_eq!(mlp.num_outputs(), 3);
        assert_eq!(mlp.output_activation(), Activation::Softmax);
    }

    #[test]
    fn forward_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mlp =
            Mlp::new_random(&[5, 7, 2], Activation::Tanh, Activation::Identity, &mut rng).unwrap();
        let x = Matrix::random_uniform(3, 5, 0.0, 1.0, &mut rng);
        let y = mlp.forward_batch(&x).unwrap();
        assert_eq!(y.shape(), (3, 2));
        assert!(mlp.forward_batch(&Matrix::zeros(2, 9)).is_err());
    }

    #[test]
    fn training_learns_blobs() {
        let ds = BlobsConfig::new(3, 6).num_samples(240).seed(11).generate();
        let split = ds.split_frac(0.75).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut mlp =
            Mlp::new_random(&[6, 16, 3], Activation::Relu, Activation::Softmax, &mut rng).unwrap();
        let cfg = SgdConfig {
            epochs: 60,
            momentum: 0.0,
            learning_rate: 0.5,
            ..SgdConfig::default()
        };
        let final_loss = train_mlp(
            &mut mlp,
            split.train.inputs(),
            &split.train.one_hot_targets(),
            Loss::CrossEntropy,
            &cfg,
            &mut rng,
        )
        .unwrap();
        assert!(final_loss < 0.5, "final loss {final_loss}");
        let preds = mlp.predict_batch(split.test.inputs()).unwrap();
        let acc = accuracy(&preds, split.test.labels());
        assert!(acc > 0.85, "mlp accuracy {acc}");
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mlp =
            Mlp::new_random(&[4, 6, 3], Activation::Tanh, Activation::Softmax, &mut rng).unwrap();
        let u = Matrix::row_vector(&[0.4, 0.1, 0.8, 0.3]);
        let t = Matrix::row_vector(&[0.0, 1.0, 0.0]);
        let g = mlp
            .batch_input_gradients(&u, &t, Loss::CrossEntropy)
            .unwrap();
        let h = 1e-6;
        for j in 0..4 {
            let mut up = u.clone();
            up[(0, j)] += h;
            let mut dn = u.clone();
            dn[(0, j)] -= h;
            let lp = Loss::CrossEntropy.value(&mlp.forward_batch(&up).unwrap(), &t);
            let lm = Loss::CrossEntropy.value(&mlp.forward_batch(&dn).unwrap(), &t);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (g[(0, j)] - fd).abs() < 1e-5,
                "input {j}: {} vs {fd}",
                g[(0, j)]
            );
        }
    }

    #[test]
    fn per_layer_norms_have_layer_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mlp =
            Mlp::new_random(&[5, 7, 2], Activation::Relu, Activation::Identity, &mut rng).unwrap();
        let norms = mlp.per_layer_column_l1_norms();
        assert_eq!(norms.len(), 2);
        assert_eq!(norms[0].len(), 5);
        assert_eq!(norms[1].len(), 7);
        assert!(norms.iter().flatten().all(|&v| v >= 0.0));
    }

    #[test]
    fn empty_training_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut mlp =
            Mlp::new_random(&[3, 2], Activation::Relu, Activation::Identity, &mut rng).unwrap();
        assert!(matches!(
            train_mlp(
                &mut mlp,
                &Matrix::zeros(0, 3),
                &Matrix::zeros(0, 2),
                Loss::Mse,
                &SgdConfig::default(),
                &mut rng
            ),
            Err(NnError::EmptyDataset)
        ));
    }
}
