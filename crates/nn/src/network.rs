//! The paper's model: a single dense layer `ŷ = f(W u [+ b])`.

use crate::activation::Activation;
use crate::{NnError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use xbar_linalg::{vec_ops, Matrix};

/// A single-layer neural network with an `outputs x inputs` weight matrix,
/// an optional bias, and an output activation — exactly the model of the
/// paper's Eq. 4, and the model an NVM crossbar implements directly.
///
/// Bias defaults to **off** so that the network's pre-activation equals the
/// crossbar's output current vector and its weights fully determine the
/// power signature (Eq. 5).
///
/// # Example
///
/// ```
/// use xbar_nn::activation::Activation;
/// use xbar_nn::network::SingleLayerNet;
/// use xbar_linalg::Matrix;
///
/// let w = Matrix::from_rows(&[&[1.0, -1.0], &[0.5, 0.5]]);
/// let net = SingleLayerNet::from_weights(w, Activation::Identity);
/// let y = net.forward_one(&[1.0, 2.0])?;
/// assert_eq!(y, vec![-1.0, 1.5]);
/// # Ok::<(), xbar_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleLayerNet {
    weights: Matrix,
    bias: Option<Vec<f64>>,
    activation: Activation,
}

impl SingleLayerNet {
    /// Creates a network from an existing `outputs x inputs` weight matrix
    /// (no bias).
    pub fn from_weights(weights: Matrix, activation: Activation) -> Self {
        SingleLayerNet {
            weights,
            bias: None,
            activation,
        }
    }

    /// Creates a network with small random uniform weights in
    /// `[-r, r]` where `r = 1/sqrt(inputs)` (Xavier-style fan-in scaling).
    pub fn new_random<R: Rng + ?Sized>(
        inputs: usize,
        outputs: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        let r = 1.0 / (inputs.max(1) as f64).sqrt();
        SingleLayerNet {
            weights: Matrix::random_uniform(outputs, inputs, -r, r, rng),
            bias: None,
            activation,
        }
    }

    /// Creates an all-zero network (useful as a surrogate initial state).
    pub fn new_zeros(inputs: usize, outputs: usize, activation: Activation) -> Self {
        SingleLayerNet {
            weights: Matrix::zeros(outputs, inputs),
            bias: None,
            activation,
        }
    }

    /// Enables a bias vector (initialised to zero).
    pub fn with_bias(mut self) -> Self {
        self.bias = Some(vec![0.0; self.weights.rows()]);
        self
    }

    /// Input dimension `N`.
    pub fn num_inputs(&self) -> usize {
        self.weights.cols()
    }

    /// Output dimension `M`.
    pub fn num_outputs(&self) -> usize {
        self.weights.rows()
    }

    /// The `M x N` weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Mutable access to the weights (used by trainers and attacks).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// The bias vector, if enabled.
    pub fn bias(&self) -> Option<&[f64]> {
        self.bias.as_deref()
    }

    /// Mutable bias vector, if enabled.
    pub fn bias_mut(&mut self) -> Option<&mut Vec<f64>> {
        self.bias.as_mut()
    }

    /// The output activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Pre-activations `s = W u (+ b)` for one input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputDimMismatch`] if `u` has the wrong length.
    pub fn preactivation_one(&self, u: &[f64]) -> Result<Vec<f64>> {
        if u.len() != self.num_inputs() {
            return Err(NnError::InputDimMismatch {
                expected: self.num_inputs(),
                got: u.len(),
            });
        }
        let mut s = self.weights.matvec(u);
        if let Some(b) = &self.bias {
            vec_ops::axpy(1.0, b, &mut s);
        }
        Ok(s)
    }

    /// Output `ŷ = f(s)` for one input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputDimMismatch`] if `u` has the wrong length.
    pub fn forward_one(&self, u: &[f64]) -> Result<Vec<f64>> {
        let mut s = self.preactivation_one(u)?;
        self.activation.apply_row(&mut s);
        Ok(s)
    }

    /// Pre-activations for a batch (`samples x inputs` → `samples x
    /// outputs`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputDimMismatch`] on a feature-count mismatch.
    pub fn preactivation_batch(&self, inputs: &Matrix) -> Result<Matrix> {
        if inputs.cols() != self.num_inputs() {
            return Err(NnError::InputDimMismatch {
                expected: self.num_inputs(),
                got: inputs.cols(),
            });
        }
        let mut s = inputs
            .matmul_nt(&self.weights)
            .expect("dimensions checked above");
        if let Some(b) = &self.bias {
            for i in 0..s.rows() {
                vec_ops::axpy(1.0, b, s.row_mut(i));
            }
        }
        Ok(s)
    }

    /// Outputs for a batch.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputDimMismatch`] on a feature-count mismatch.
    pub fn forward_batch(&self, inputs: &Matrix) -> Result<Matrix> {
        let mut s = self.preactivation_batch(inputs)?;
        for i in 0..s.rows() {
            self.activation.apply_row(s.row_mut(i));
        }
        Ok(s)
    }

    /// Predicted label (argmax of the outputs) for one input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputDimMismatch`] if `u` has the wrong length.
    pub fn predict_one(&self, u: &[f64]) -> Result<usize> {
        Ok(vec_ops::argmax(&self.forward_one(u)?))
    }

    /// Predicted labels for a batch.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputDimMismatch`] on a feature-count mismatch.
    pub fn predict_batch(&self, inputs: &Matrix) -> Result<Vec<usize>> {
        let out = self.forward_batch(inputs)?;
        Ok((0..out.rows())
            .map(|i| vec_ops::argmax(out.row(i)))
            .collect())
    }

    /// The 1-norms of the weight-matrix columns — the exact quantity the
    /// crossbar's total current leaks (paper Eq. 5–6). Includes the bias
    /// column only implicitly (bias, when enabled, is a separate device
    /// column in the crossbar mapping).
    pub fn column_l1_norms(&self) -> Vec<f64> {
        self.weights.col_l1_norms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy_net() -> SingleLayerNet {
        SingleLayerNet::from_weights(
            Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 1.0, 1.0]]),
            Activation::Identity,
        )
    }

    #[test]
    fn forward_one_known() {
        let y = toy_net().forward_one(&[1.0, 1.0, 2.0]).unwrap();
        assert_eq!(y, vec![0.0, 3.0]);
    }

    #[test]
    fn forward_batch_matches_forward_one() {
        let net = toy_net();
        let inputs = Matrix::from_rows(&[&[1.0, 1.0, 2.0], &[0.5, 0.0, -1.0]]);
        let batch = net.forward_batch(&inputs).unwrap();
        for i in 0..2 {
            let one = net.forward_one(inputs.row(i)).unwrap();
            for (a, b) in batch.row(i).iter().zip(&one) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn bias_shifts_preactivation() {
        let mut net = toy_net().with_bias();
        net.bias_mut().unwrap()[0] = 10.0;
        let s = net.preactivation_one(&[1.0, 1.0, 2.0]).unwrap();
        assert_eq!(s, vec![10.0, 3.0]);
    }

    #[test]
    fn softmax_head_produces_distribution() {
        let net = SingleLayerNet::from_weights(
            Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]),
            Activation::Softmax,
        );
        let y = net.forward_one(&[0.3, 0.7]).unwrap();
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(y.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn predict_is_argmax() {
        let net = toy_net();
        assert_eq!(net.predict_one(&[1.0, 1.0, 2.0]).unwrap(), 1);
        let labels = net
            .predict_batch(&Matrix::from_rows(&[&[1.0, 1.0, 2.0], &[1.0, -1.0, 0.0]]))
            .unwrap();
        assert_eq!(labels, vec![1, 0]);
    }

    #[test]
    fn dimension_errors() {
        let net = toy_net();
        assert!(matches!(
            net.forward_one(&[1.0]),
            Err(NnError::InputDimMismatch {
                expected: 3,
                got: 1
            })
        ));
        assert!(net.forward_batch(&Matrix::zeros(2, 5)).is_err());
    }

    #[test]
    fn column_l1_norms_known() {
        assert_eq!(toy_net().column_l1_norms(), vec![1.0, 3.0, 1.5]);
    }

    #[test]
    fn random_init_is_fan_in_scaled() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = SingleLayerNet::new_random(100, 10, Activation::Identity, &mut rng);
        let bound = 1.0 / 10.0;
        assert!(net.weights().as_slice().iter().all(|&w| w.abs() <= bound));
        assert!(net.weights().max_abs() > 0.0);
    }

    #[test]
    fn zeros_init() {
        let net = SingleLayerNet::new_zeros(4, 2, Activation::Identity);
        assert_eq!(net.num_inputs(), 4);
        assert_eq!(net.num_outputs(), 2);
        assert_eq!(net.weights().max_abs(), 0.0);
    }
}
