//! Input sensitivity: the gradient of the loss with respect to the input.
//!
//! This is the paper's Eq. 7,
//! `∂L/∂u_j = Σ_i ∂L/∂ŷ_i · f'(s_i) · w_ij`,
//! i.e. `∂L/∂u = Wᵀ Δ` where `Δ` is the pre-activation delta. Table I
//! correlates the magnitude of this quantity (per sample, and averaged
//! over a dataset) with the weight-column 1-norms that the crossbar's
//! power consumption leaks; Fig. 4's "Worst" attack perturbs the pixel
//! with the largest sensitivity in the direction of the gradient.

use crate::loss::{preactivation_deltas, Loss};
use crate::network::SingleLayerNet;
use crate::Result;
use xbar_linalg::Matrix;

/// Gradient of the loss w.r.t. one input sample, `∂L/∂u = Wᵀ Δ`.
///
/// `target` is the one-hot (or regression) target row.
///
/// # Errors
///
/// Propagates dimension and pairing errors from the forward/backward pass.
pub fn input_gradient(
    net: &SingleLayerNet,
    u: &[f64],
    target: &[f64],
    loss: Loss,
) -> Result<Vec<f64>> {
    let grads = batch_input_gradients(
        net,
        &Matrix::row_vector(u),
        &Matrix::row_vector(target),
        loss,
    )?;
    Ok(grads.row(0).to_vec())
}

/// Gradients of the per-sample losses w.r.t. each input in a batch:
/// returns a `samples x inputs` matrix whose row `b` is `∂L_b/∂u_b`.
///
/// # Errors
///
/// Propagates dimension and pairing errors from the forward/backward pass.
pub fn batch_input_gradients(
    net: &SingleLayerNet,
    inputs: &Matrix,
    targets: &Matrix,
    loss: Loss,
) -> Result<Matrix> {
    let preacts = net.preactivation_batch(inputs)?;
    let mut outputs = preacts.clone();
    for i in 0..outputs.rows() {
        net.activation().apply_row(outputs.row_mut(i));
    }
    let deltas = preactivation_deltas(&outputs, &preacts, targets, net.activation(), loss)?;
    // ∂L/∂U = Δ W  (each row: Wᵀ δ_b).
    Ok(deltas.matmul(net.weights()))
}

/// Mean absolute sensitivity over a dataset: feature `j`'s value is
/// `(1/B) Σ_b |∂L_b/∂u_bj|` — the quantity plotted in the paper's Fig. 3
/// (a), (c), (e), (g) and correlated in Table I.
///
/// # Errors
///
/// Propagates dimension and pairing errors from the forward/backward pass.
pub fn mean_abs_sensitivity(
    net: &SingleLayerNet,
    inputs: &Matrix,
    targets: &Matrix,
    loss: Loss,
) -> Result<Vec<f64>> {
    let grads = batch_input_gradients(net, inputs, targets, loss)?;
    let mut out = vec![0.0; grads.cols()];
    for row in grads.rows_iter() {
        for (o, &g) in out.iter_mut().zip(row) {
            *o += g.abs();
        }
    }
    let b = grads.rows().max(1) as f64;
    for o in &mut out {
        *o /= b;
    }
    Ok(out)
}

/// Per-sample absolute sensitivities: `|∂L_b/∂u_bj|` as a
/// `samples x inputs` matrix. Table I's "mean correlation" column
/// correlates each row with the 1-norms and averages the coefficients.
///
/// # Errors
///
/// Propagates dimension and pairing errors from the forward/backward pass.
pub fn abs_input_gradients(
    net: &SingleLayerNet,
    inputs: &Matrix,
    targets: &Matrix,
    loss: Loss,
) -> Result<Matrix> {
    Ok(batch_input_gradients(net, inputs, targets, loss)?.map(f64::abs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn finite_diff_grad(net: &SingleLayerNet, u: &[f64], target: &[f64], loss: Loss) -> Vec<f64> {
        let h = 1e-6;
        (0..u.len())
            .map(|j| {
                let mut up = u.to_vec();
                up[j] += h;
                let mut dn = u.to_vec();
                dn[j] -= h;
                let lp = loss.value(
                    &Matrix::row_vector(&net.forward_one(&up).unwrap()),
                    &Matrix::row_vector(target),
                );
                let ln_ = loss.value(
                    &Matrix::row_vector(&net.forward_one(&dn).unwrap()),
                    &Matrix::row_vector(target),
                );
                (lp - ln_) / (2.0 * h)
            })
            .collect()
    }

    #[test]
    fn linear_mse_gradient_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = SingleLayerNet::new_random(5, 3, Activation::Identity, &mut rng);
        let u = [0.2, 0.8, 0.1, 0.5, 0.9];
        let target = [1.0, 0.0, 0.0];
        let g = input_gradient(&net, &u, &target, Loss::Mse).unwrap();
        let fd = finite_diff_grad(&net, &u, &target, Loss::Mse);
        for (a, b) in g.iter().zip(&fd) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn softmax_ce_gradient_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = SingleLayerNet::new_random(6, 4, Activation::Softmax, &mut rng);
        let u = [0.3, 0.1, 0.9, 0.4, 0.0, 0.7];
        let target = [0.0, 0.0, 1.0, 0.0];
        let g = input_gradient(&net, &u, &target, Loss::CrossEntropy).unwrap();
        let fd = finite_diff_grad(&net, &u, &target, Loss::CrossEntropy);
        for (a, b) in g.iter().zip(&fd) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn sigmoid_mse_gradient_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let net = SingleLayerNet::new_random(4, 2, Activation::Sigmoid, &mut rng);
        let u = [0.5, -0.2, 0.8, 0.3];
        let target = [0.0, 1.0];
        let g = input_gradient(&net, &u, &target, Loss::Mse).unwrap();
        let fd = finite_diff_grad(&net, &u, &target, Loss::Mse);
        for (a, b) in g.iter().zip(&fd) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn batch_gradients_match_per_sample() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let net = SingleLayerNet::new_random(4, 3, Activation::Identity, &mut rng);
        let inputs = Matrix::random_uniform(5, 4, 0.0, 1.0, &mut rng);
        let mut targets = Matrix::zeros(5, 3);
        for i in 0..5 {
            targets[(i, i % 3)] = 1.0;
        }
        let batch = batch_input_gradients(&net, &inputs, &targets, Loss::Mse).unwrap();
        for i in 0..5 {
            let single = input_gradient(&net, inputs.row(i), targets.row(i), Loss::Mse).unwrap();
            for (a, b) in batch.row(i).iter().zip(&single) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mean_abs_sensitivity_is_mean_of_abs_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let net = SingleLayerNet::new_random(3, 2, Activation::Identity, &mut rng);
        let inputs = Matrix::random_uniform(4, 3, 0.0, 1.0, &mut rng);
        let mut targets = Matrix::zeros(4, 2);
        for i in 0..4 {
            targets[(i, i % 2)] = 1.0;
        }
        let mean = mean_abs_sensitivity(&net, &inputs, &targets, Loss::Mse).unwrap();
        let abs = abs_input_gradients(&net, &inputs, &targets, Loss::Mse).unwrap();
        for (j, &got) in mean.iter().enumerate() {
            let want: f64 = abs.col(j).iter().sum::<f64>() / 4.0;
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn dead_input_has_zero_sensitivity() {
        // A zero weight column means the corresponding input cannot affect
        // the loss — exactly why border pixels are unattractive targets.
        let mut w = Matrix::random_uniform(3, 4, -1.0, 1.0, &mut ChaCha8Rng::seed_from_u64(5));
        w.set_col(2, &[0.0, 0.0, 0.0]);
        let net = SingleLayerNet::from_weights(w, Activation::Identity);
        let g = input_gradient(&net, &[0.4, 0.2, 0.9, 0.5], &[1.0, 0.0, 0.0], Loss::Mse).unwrap();
        assert_eq!(g[2], 0.0);
        assert!(g.iter().any(|&v| v != 0.0));
    }
}
