//! Minibatch SGD training for [`SingleLayerNet`].

use crate::activation::Activation;
use crate::loss::{preactivation_deltas, Loss};
use crate::network::SingleLayerNet;
use crate::{NnError, Result};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use xbar_linalg::Matrix;

/// Hyperparameters for stochastic gradient descent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Step size.
    pub learning_rate: f64,
    /// Classical momentum coefficient in `[0, 1)`.
    pub momentum: f64,
    /// L2 weight decay coefficient.
    pub weight_decay: f64,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f64,
    /// Whether to reshuffle the sample order each epoch.
    pub shuffle: bool,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            learning_rate: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
            epochs: 30,
            batch_size: 32,
            lr_decay: 1.0,
            shuffle: true,
        }
    }
}

impl SgdConfig {
    fn validate(&self) -> Result<()> {
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(NnError::InvalidHyperparameter {
                name: "learning_rate",
            });
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(NnError::InvalidHyperparameter { name: "momentum" });
        }
        if self.weight_decay < 0.0 || !self.weight_decay.is_finite() {
            return Err(NnError::InvalidHyperparameter {
                name: "weight_decay",
            });
        }
        if self.batch_size == 0 {
            return Err(NnError::InvalidHyperparameter { name: "batch_size" });
        }
        if !(self.lr_decay.is_finite() && self.lr_decay > 0.0) {
            return Err(NnError::InvalidHyperparameter { name: "lr_decay" });
        }
        Ok(())
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Full-dataset loss before the first update.
    pub initial_loss: f64,
    /// Full-dataset loss after the last epoch.
    pub final_loss: f64,
    /// Full-dataset loss after each epoch.
    pub epoch_losses: Vec<f64>,
}

/// Computes the full-dataset loss for reporting.
///
/// # Errors
///
/// Propagates forward-pass dimension errors.
pub fn dataset_loss(
    net: &SingleLayerNet,
    inputs: &Matrix,
    targets: &Matrix,
    loss: Loss,
) -> Result<f64> {
    let outputs = net.forward_batch(inputs)?;
    Ok(loss.value(&outputs, targets))
}

/// Trains `net` on `dataset` with minibatch SGD against one-hot targets.
///
/// The gradient of the batch loss w.r.t. the weights is
/// `∇W = (1/B) Δᵀ X (+ weight_decay · W)` where `Δ` holds the per-sample
/// pre-activation deltas from [`preactivation_deltas`].
///
/// # Errors
///
/// * [`NnError::EmptyDataset`] if the dataset has no samples.
/// * [`NnError::InputDimMismatch`] if the dataset's feature count differs
///   from the network's input dimension.
/// * [`NnError::InvalidHyperparameter`] for invalid SGD settings.
/// * [`NnError::UnsupportedPairing`] for an invalid activation/loss pair.
pub fn train<R: Rng + ?Sized>(
    net: &mut SingleLayerNet,
    dataset: &xbar_data::Dataset,
    loss: Loss,
    cfg: &SgdConfig,
    rng: &mut R,
) -> Result<TrainReport> {
    let targets = dataset.one_hot_targets();
    train_on_matrices(net, dataset.inputs(), &targets, loss, cfg, rng)
}

/// Trains against explicit input/target matrices. This is the entry point
/// the surrogate attack uses, where targets come from oracle queries
/// rather than ground-truth labels.
///
/// # Errors
///
/// Same conditions as [`train`], plus [`NnError::TargetDimMismatch`] if the
/// target width differs from the network's output dimension.
pub fn train_on_matrices<R: Rng + ?Sized>(
    net: &mut SingleLayerNet,
    inputs: &Matrix,
    targets: &Matrix,
    loss: Loss,
    cfg: &SgdConfig,
    rng: &mut R,
) -> Result<TrainReport> {
    cfg.validate()?;
    if inputs.rows() == 0 {
        return Err(NnError::EmptyDataset);
    }
    if inputs.cols() != net.num_inputs() {
        return Err(NnError::InputDimMismatch {
            expected: net.num_inputs(),
            got: inputs.cols(),
        });
    }
    if targets.cols() != net.num_outputs() {
        return Err(NnError::TargetDimMismatch {
            expected: net.num_outputs(),
            got: targets.cols(),
        });
    }
    // Fail fast on an unsupported pairing rather than mid-epoch.
    check_pairing(net.activation(), loss)?;

    let n = inputs.rows();
    let initial_loss = dataset_loss(net, inputs, targets, loss)?;
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut lr = cfg.learning_rate;
    let mut velocity = Matrix::zeros(net.num_outputs(), net.num_inputs());
    let mut bias_velocity = vec![0.0; net.num_outputs()];
    let mut order: Vec<usize> = (0..n).collect();

    for _epoch in 0..cfg.epochs {
        if cfg.shuffle {
            order.shuffle(rng);
        }
        for chunk in order.chunks(cfg.batch_size) {
            let x = inputs.select_rows(chunk);
            let t = targets.select_rows(chunk);
            let preacts = net.preactivation_batch(&x)?;
            let mut outputs = preacts.clone();
            for i in 0..outputs.rows() {
                net.activation().apply_row(outputs.row_mut(i));
            }
            let deltas = preactivation_deltas(&outputs, &preacts, &t, net.activation(), loss)?;
            let b = chunk.len() as f64;
            // ∇W = (1/B) Δᵀ X.
            let mut grad = deltas
                .matmul_tn(&x)
                .expect("deltas and x have one row per batch sample");
            grad.scale_inplace(1.0 / b);
            if cfg.weight_decay > 0.0 {
                grad.axpy(cfg.weight_decay, net.weights());
            }
            // Momentum update.
            velocity.scale_inplace(cfg.momentum);
            velocity.axpy(-lr, &grad);
            net.weights_mut().axpy(1.0, &velocity);
            if net.bias().is_some() {
                // Bias gradient: column means of Δ.
                let grad_b: Vec<f64> = (0..deltas.cols())
                    .map(|j| deltas.col(j).iter().sum::<f64>() / b)
                    .collect();
                let bias = net.bias_mut().expect("bias checked above");
                for ((v, g), b_i) in bias_velocity.iter_mut().zip(&grad_b).zip(bias.iter_mut()) {
                    *v = cfg.momentum * *v - lr * g;
                    *b_i += *v;
                }
            }
        }
        lr *= cfg.lr_decay;
        epoch_losses.push(dataset_loss(net, inputs, targets, loss)?);
    }

    Ok(TrainReport {
        initial_loss,
        final_loss: *epoch_losses.last().unwrap_or(&initial_loss),
        epoch_losses,
    })
}

fn check_pairing(activation: Activation, loss: Loss) -> Result<()> {
    match (activation, loss) {
        (Activation::Softmax, Loss::CrossEntropy) => Ok(()),
        (Activation::Softmax, Loss::Mse) | (_, Loss::CrossEntropy) => {
            Err(NnError::UnsupportedPairing {
                activation: activation.name(),
                loss: loss.name(),
            })
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use xbar_data::synth::blobs::BlobsConfig;

    #[test]
    fn default_config_is_valid() {
        assert!(SgdConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_hyperparameters_rejected() {
        let base = SgdConfig::default();
        for cfg in [
            SgdConfig {
                learning_rate: 0.0,
                ..base
            },
            SgdConfig {
                learning_rate: f64::NAN,
                ..base
            },
            SgdConfig {
                momentum: 1.0,
                ..base
            },
            SgdConfig {
                momentum: -0.1,
                ..base
            },
            SgdConfig {
                weight_decay: -1.0,
                ..base
            },
            SgdConfig {
                batch_size: 0,
                ..base
            },
            SgdConfig {
                lr_decay: 0.0,
                ..base
            },
        ] {
            assert!(cfg.validate().is_err(), "{cfg:?} should be invalid");
        }
    }

    #[test]
    fn training_reduces_loss_linear_mse() {
        let ds = BlobsConfig::new(3, 6).num_samples(120).seed(2).generate();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = SingleLayerNet::new_random(6, 3, Activation::Identity, &mut rng);
        let report = train(&mut net, &ds, Loss::Mse, &SgdConfig::default(), &mut rng).unwrap();
        assert!(report.final_loss < report.initial_loss * 0.8);
        assert_eq!(report.epoch_losses.len(), 30);
    }

    #[test]
    fn training_reduces_loss_softmax_ce() {
        let ds = BlobsConfig::new(4, 8).num_samples(160).seed(3).generate();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net = SingleLayerNet::new_random(8, 4, Activation::Softmax, &mut rng);
        let report = train(
            &mut net,
            &ds,
            Loss::CrossEntropy,
            &SgdConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(report.final_loss < report.initial_loss * 0.5);
    }

    #[test]
    fn trained_net_classifies_blobs_well() {
        let ds = BlobsConfig::new(3, 10).num_samples(300).seed(4).generate();
        let split = ds.split_frac(0.8).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut net = SingleLayerNet::new_random(10, 3, Activation::Softmax, &mut rng);
        train(
            &mut net,
            &split.train,
            Loss::CrossEntropy,
            &SgdConfig::default(),
            &mut rng,
        )
        .unwrap();
        let preds = net.predict_batch(split.test.inputs()).unwrap();
        let acc = accuracy(&preds, split.test.labels());
        assert!(acc > 0.9, "blob accuracy too low: {acc}");
    }

    #[test]
    fn training_with_bias_works() {
        let ds = BlobsConfig::new(2, 4).num_samples(80).seed(5).generate();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut net = SingleLayerNet::new_random(4, 2, Activation::Identity, &mut rng).with_bias();
        let report = train(&mut net, &ds, Loss::Mse, &SgdConfig::default(), &mut rng).unwrap();
        assert!(report.final_loss < report.initial_loss);
        // Bias actually moved.
        assert!(net.bias().unwrap().iter().any(|&b| b != 0.0));
    }

    #[test]
    fn zero_epochs_is_a_noop() {
        let ds = BlobsConfig::new(2, 4).num_samples(20).seed(6).generate();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut net = SingleLayerNet::new_random(4, 2, Activation::Identity, &mut rng);
        let w_before = net.weights().clone();
        let cfg = SgdConfig {
            epochs: 0,
            ..SgdConfig::default()
        };
        let report = train(&mut net, &ds, Loss::Mse, &cfg, &mut rng).unwrap();
        assert_eq!(report.initial_loss, report.final_loss);
        assert_eq!(net.weights(), &w_before);
    }

    #[test]
    fn empty_dataset_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = SingleLayerNet::new_random(4, 2, Activation::Identity, &mut rng);
        let inputs = Matrix::zeros(0, 4);
        let targets = Matrix::zeros(0, 2);
        assert!(matches!(
            train_on_matrices(
                &mut net,
                &inputs,
                &targets,
                Loss::Mse,
                &SgdConfig::default(),
                &mut rng
            ),
            Err(NnError::EmptyDataset)
        ));
    }

    #[test]
    fn unsupported_pairing_rejected_up_front() {
        let ds = BlobsConfig::new(2, 4).num_samples(10).seed(7).generate();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut net = SingleLayerNet::new_random(4, 2, Activation::Softmax, &mut rng);
        assert!(matches!(
            train(&mut net, &ds, Loss::Mse, &SgdConfig::default(), &mut rng),
            Err(NnError::UnsupportedPairing { .. })
        ));
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let ds = BlobsConfig::new(2, 4).num_samples(40).seed(8).generate();
        let run = |wd: f64| -> f64 {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let mut net = SingleLayerNet::new_random(4, 2, Activation::Identity, &mut rng);
            let cfg = SgdConfig {
                weight_decay: wd,
                ..SgdConfig::default()
            };
            train(&mut net, &ds, Loss::Mse, &cfg, &mut rng).unwrap();
            net.weights().fro_norm()
        };
        assert!(run(0.5) < run(0.0));
    }

    #[test]
    fn sgd_gradient_matches_finite_differences() {
        // One full-batch step with lr ε should change the loss by about
        // -ε‖∇‖² for small ε.
        let ds = BlobsConfig::new(2, 3).num_samples(16).seed(9).generate();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let net0 = SingleLayerNet::new_random(3, 2, Activation::Identity, &mut rng);
        let targets = ds.one_hot_targets();
        let l0 = dataset_loss(&net0, ds.inputs(), &targets, Loss::Mse).unwrap();
        let eps = 1e-4;
        let cfg = SgdConfig {
            learning_rate: eps,
            momentum: 0.0,
            weight_decay: 0.0,
            epochs: 1,
            batch_size: 16,
            lr_decay: 1.0,
            shuffle: false,
        };
        let mut net1 = net0.clone();
        train(&mut net1, &ds, Loss::Mse, &cfg, &mut rng).unwrap();
        let l1 = dataset_loss(&net1, ds.inputs(), &targets, Loss::Mse).unwrap();
        // Gradient norm² from the weight change: ΔW = -ε ∇.
        let dw = &net1.weights().clone() - net0.weights();
        let grad_norm2 = dw.fro_norm().powi(2) / (eps * eps);
        let predicted_drop = eps * grad_norm2;
        let actual_drop = l0 - l1;
        assert!(
            (actual_drop - predicted_drop).abs() < 0.05 * predicted_drop.max(1e-12),
            "actual {actual_drop} vs predicted {predicted_drop}"
        );
    }
}
