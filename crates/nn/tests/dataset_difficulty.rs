//! End-to-end checks that the procedural datasets land in the accuracy
//! regimes the paper's conclusions depend on: the digits stand-in must be
//! highly linearly separable (MNIST-like, ~0.9), the objects stand-in must
//! be hard for a single layer (CIFAR-10-like, well under 0.6 but above
//! chance).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_data::synth::digits::DigitsConfig;
use xbar_data::synth::objects::ObjectsConfig;
use xbar_nn::activation::Activation;
use xbar_nn::loss::Loss;
use xbar_nn::metrics::accuracy;
use xbar_nn::network::SingleLayerNet;
use xbar_nn::train::{train, SgdConfig};

fn train_and_eval(
    ds: &xbar_data::Dataset,
    activation: Activation,
    loss: Loss,
    cfg: &SgdConfig,
    seed: u64,
) -> (f64, f64) {
    let split = ds.split_frac(0.85).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut net =
        SingleLayerNet::new_random(ds.num_features(), ds.num_classes(), activation, &mut rng);
    train(&mut net, &split.train, loss, cfg, &mut rng).unwrap();
    let train_acc = accuracy(
        &net.predict_batch(split.train.inputs()).unwrap(),
        split.train.labels(),
    );
    let test_acc = accuracy(
        &net.predict_batch(split.test.inputs()).unwrap(),
        split.test.labels(),
    );
    (train_acc, test_acc)
}

#[test]
fn digits_are_mnist_like_separable() {
    let ds = DigitsConfig::default()
        .num_samples(2000)
        .seed(42)
        .generate();
    let cfg = SgdConfig {
        epochs: 20,
        ..SgdConfig::default()
    };
    let (train_acc, test_acc) =
        train_and_eval(&ds, Activation::Softmax, Loss::CrossEntropy, &cfg, 0);
    println!("digits softmax: train {train_acc:.3} test {test_acc:.3}");
    assert!(
        test_acc > 0.8,
        "digits should be highly separable, got {test_acc}"
    );
}

#[test]
fn digits_linear_mse_also_separable() {
    let ds = DigitsConfig::default()
        .num_samples(2000)
        .seed(43)
        .generate();
    let cfg = SgdConfig {
        epochs: 20,
        learning_rate: 0.05,
        ..SgdConfig::default()
    };
    let (_, test_acc) = train_and_eval(&ds, Activation::Identity, Loss::Mse, &cfg, 1);
    println!("digits linear: test {test_acc:.3}");
    assert!(test_acc > 0.75, "digits linear head too weak: {test_acc}");
}

#[test]
fn objects_are_cifar_like_hard() {
    let ds = ObjectsConfig::default()
        .num_samples(2000)
        .seed(44)
        .generate();
    let cfg = SgdConfig {
        epochs: 20,
        learning_rate: 0.05,
        ..SgdConfig::default()
    };
    let (_, test_acc) = train_and_eval(&ds, Activation::Softmax, Loss::CrossEntropy, &cfg, 2);
    println!("objects softmax: test {test_acc:.3}");
    assert!(
        test_acc > 0.15,
        "objects should beat 10% chance, got {test_acc}"
    );
    assert!(
        test_acc < 0.65,
        "objects should stay hard for a single layer, got {test_acc}"
    );
}
