//! Property-based tests of the neural-network substrate: gradient
//! correctness against finite differences for arbitrary shapes, and
//! invariants of the forward pass.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_linalg::Matrix;
use xbar_nn::activation::Activation;
use xbar_nn::loss::Loss;
use xbar_nn::network::SingleLayerNet;
use xbar_nn::sensitivity::input_gradient;

fn seeded_net(n: usize, m: usize, act: Activation, seed: u64) -> SingleLayerNet {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SingleLayerNet::new_random(n, m, act, &mut rng)
}

fn seeded_input(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
    Matrix::random_uniform(1, n, 0.0, 1.0, &mut rng).into_vec()
}

fn one_hot(m: usize, class: usize) -> Vec<f64> {
    let mut t = vec![0.0; m];
    t[class % m] = 1.0;
    t
}

fn finite_diff(net: &SingleLayerNet, u: &[f64], t: &[f64], loss: Loss) -> Vec<f64> {
    let h = 1e-6;
    (0..u.len())
        .map(|j| {
            let mut up = u.to_vec();
            up[j] += h;
            let mut dn = u.to_vec();
            dn[j] -= h;
            let lp = loss.value(
                &Matrix::row_vector(&net.forward_one(&up).unwrap()),
                &Matrix::row_vector(t),
            );
            let lm = loss.value(
                &Matrix::row_vector(&net.forward_one(&dn).unwrap()),
                &Matrix::row_vector(t),
            );
            (lp - lm) / (2.0 * h)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The Eq. 7 input gradient matches finite differences for every
    /// supported activation/loss pairing, at arbitrary shapes and points.
    #[test]
    fn input_gradient_matches_finite_differences(
        n in 2usize..10,
        m in 2usize..6,
        class in 0usize..6,
        seed in any::<u64>(),
        pairing in prop::sample::select(vec![0usize, 1, 2, 3]),
    ) {
        let (act, loss) = match pairing {
            0 => (Activation::Identity, Loss::Mse),
            1 => (Activation::Sigmoid, Loss::Mse),
            2 => (Activation::Tanh, Loss::Mse),
            _ => (Activation::Softmax, Loss::CrossEntropy),
        };
        let net = seeded_net(n, m, act, seed);
        let u = seeded_input(n, seed);
        let t = one_hot(m, class);
        let g = input_gradient(&net, &u, &t, loss).unwrap();
        let fd = finite_diff(&net, &u, &t, loss);
        for (a, b) in g.iter().zip(&fd) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    /// Softmax outputs are a probability distribution for any input.
    #[test]
    fn softmax_head_is_distribution(
        n in 1usize..12,
        m in 1usize..8,
        seed in any::<u64>(),
    ) {
        let net = seeded_net(n, m, Activation::Softmax, seed);
        let y = net.forward_one(&seeded_input(n, seed)).unwrap();
        prop_assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(y.iter().all(|&v| v >= 0.0));
    }

    /// The forward pass is homogeneous for the identity head:
    /// `f(αu) = α f(u)`.
    #[test]
    fn linear_head_is_homogeneous(
        n in 1usize..10,
        m in 1usize..6,
        seed in any::<u64>(),
        alpha in 0.0f64..3.0,
    ) {
        let net = seeded_net(n, m, Activation::Identity, seed);
        let u = seeded_input(n, seed);
        let scaled: Vec<f64> = u.iter().map(|&x| alpha * x).collect();
        let y = net.forward_one(&u).unwrap();
        let ys = net.forward_one(&scaled).unwrap();
        for (a, b) in ys.iter().zip(&y) {
            prop_assert!((a - alpha * b).abs() < 1e-9);
        }
    }

    /// Losses are non-negative and zero exactly at the target (MSE).
    #[test]
    fn mse_is_a_metric_like_loss(
        m in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t = Matrix::random_uniform(3, m, 0.0, 1.0, &mut rng);
        let o = Matrix::random_uniform(3, m, 0.0, 1.0, &mut rng);
        prop_assert!(Loss::Mse.value(&o, &t) >= 0.0);
        prop_assert!(Loss::Mse.value(&t, &t).abs() < 1e-15);
    }

    /// Column 1-norms are invariant under row permutations of W (the leak
    /// reveals nothing about which *output* a weight belongs to).
    #[test]
    fn column_norms_are_row_permutation_invariant(
        n in 1usize..8,
        m in 2usize..6,
        seed in any::<u64>(),
    ) {
        let net = seeded_net(n, m, Activation::Identity, seed);
        let w = net.weights().clone();
        // Reverse the rows.
        let rows: Vec<usize> = (0..m).rev().collect();
        let permuted = w.select_rows(&rows);
        let net2 = SingleLayerNet::from_weights(permuted, Activation::Identity);
        let a = net.column_l1_norms();
        let b = net2.column_l1_norms();
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }
}
