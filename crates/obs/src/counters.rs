//! The deterministic counter registry and its per-trial drain type.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use crate::json::JsonValue;
use crate::{Collector, SpanToken};

/// Count / sum / min / max of an observed value series — the coarse
/// histogram the trace schema carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of the observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl ValueSummary {
    fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Arithmetic mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    fn merge(&mut self, other: &ValueSummary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for ValueSummary {
    fn default() -> Self {
        ValueSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// Per-span-name statistics: occurrence count (deterministic) plus total
/// wall time (timing — excluded from determinism comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Spans closed under this name.
    pub count: u64,
    /// Total wall time across those spans.
    pub total: Duration,
}

/// Everything observed while one trial (or the out-of-trial scope) was
/// active. Keys are the dotted names from [`crate::names`]; `BTreeMap`s
/// keep iteration (and therefore trace output) deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrialObservations {
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Value-series summaries.
    pub values: BTreeMap<String, ValueSummary>,
    /// Span statistics.
    pub spans: BTreeMap<String, SpanStats>,
}

impl TrialObservations {
    /// The counter `name`, or 0 if it never fired.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Whether nothing at all was observed.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.values.is_empty() && self.spans.is_empty()
    }

    /// Folds `other` into `self` (used to build campaign-level totals
    /// out of per-trial observations).
    pub fn merge(&mut self, other: &TrialObservations) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, summary) in &other.values {
            self.values.entry(name.clone()).or_default().merge(summary);
        }
        for (name, stats) in &other.spans {
            let entry = self.spans.entry(name.clone()).or_default();
            entry.count += stats.count;
            entry.total += stats.total;
        }
    }

    /// The trace-schema JSON encoding: `counters` and `values` are
    /// deterministic; the `total_nanos` field of each span is the only
    /// wall-clock data.
    pub fn to_json(&self) -> JsonValue {
        let mut counters = JsonValue::object();
        for (name, value) in &self.counters {
            counters.push(name, *value);
        }
        let mut values = JsonValue::object();
        for (name, summary) in &self.values {
            let mut entry = JsonValue::object();
            entry
                .push("count", summary.count)
                .push("sum", summary.sum)
                .push("min", summary.min)
                .push("max", summary.max);
            values.push(name, entry);
        }
        let mut spans = JsonValue::object();
        for (name, stats) in &self.spans {
            let mut entry = JsonValue::object();
            entry.push("count", stats.count).push(
                "total_nanos",
                stats.total.as_nanos().min(u128::from(u64::MAX)) as u64,
            );
            spans.push(name, entry);
        }
        let mut obj = JsonValue::object();
        obj.push("counters", counters)
            .push("values", values)
            .push("spans", spans);
        obj
    }
}

#[derive(Default)]
struct CountersInner {
    trials: BTreeMap<u64, TrialObservations>,
    ambient: TrialObservations,
}

impl CountersInner {
    fn slot(&mut self, trial: Option<u64>) -> &mut TrialObservations {
        match trial {
            Some(index) => self.trials.entry(index).or_default(),
            None => &mut self.ambient,
        }
    }
}

/// The deterministic registry: a [`Collector`] that accumulates events
/// into per-trial [`TrialObservations`], drained by the executor as
/// each trial finishes.
///
/// Counter and value content is thread-count-invariant because events
/// are attributed to the trial that emitted them; span `total` fields
/// carry wall time and are not.
#[derive(Default)]
pub struct Counters {
    inner: Mutex<CountersInner>,
}

impl Counters {
    /// An empty registry.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Discards everything recorded for `trial` — called before a retry
    /// attempt so only the final attempt's events survive.
    pub fn reset_trial(&self, trial: u64) {
        self.inner.lock().unwrap().trials.remove(&trial);
    }

    /// Removes and returns the observations for `trial` (empty if the
    /// trial never emitted anything).
    pub fn take_trial(&self, trial: u64) -> TrialObservations {
        self.inner
            .lock()
            .unwrap()
            .trials
            .remove(&trial)
            .unwrap_or_default()
    }

    /// A copy of the events recorded outside any trial scope.
    pub fn ambient(&self) -> TrialObservations {
        self.inner.lock().unwrap().ambient.clone()
    }
}

impl Collector for Counters {
    fn counter_add(&self, trial: Option<u64>, name: &str, delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        let slot = inner.slot(trial);
        *slot.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn observe(&self, trial: Option<u64>, name: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        inner
            .slot(trial)
            .values
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    fn span_end(&self, trial: Option<u64>, name: &str, token: SpanToken) {
        let elapsed = token.elapsed();
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.slot(trial).spans.entry(name.to_string()).or_default();
        entry.count += 1;
        entry.total += elapsed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_trial() {
        let counters = Counters::new();
        counters.counter_add(Some(0), "a", 2);
        counters.counter_add(Some(0), "a", 3);
        counters.counter_add(Some(1), "a", 7);
        counters.counter_add(None, "a", 11);

        let t0 = counters.take_trial(0);
        assert_eq!(t0.counter("a"), 5);
        assert_eq!(t0.counter("missing"), 0);
        assert_eq!(counters.take_trial(1).counter("a"), 7);
        // take_trial drains.
        assert!(counters.take_trial(0).is_empty());
        assert_eq!(counters.ambient().counter("a"), 11);
    }

    #[test]
    fn values_summarise() {
        let counters = Counters::new();
        counters.observe(Some(2), "p", 1.0);
        counters.observe(Some(2), "p", 3.0);
        counters.observe(Some(2), "p", -1.0);
        let obs = counters.take_trial(2);
        let summary = obs.values.get("p").unwrap();
        assert_eq!(summary.count, 3);
        assert_eq!(summary.sum, 3.0);
        assert_eq!(summary.min, -1.0);
        assert_eq!(summary.max, 3.0);
        assert_eq!(summary.mean(), 1.0);
    }

    #[test]
    fn spans_count_and_time() {
        let counters = Counters::new();
        let token = counters.span_begin(Some(0), "s");
        counters.span_end(Some(0), "s", token);
        let token = counters.span_begin(Some(0), "s");
        counters.span_end(Some(0), "s", token);
        let obs = counters.take_trial(0);
        let stats = obs.spans.get("s").unwrap();
        assert_eq!(stats.count, 2);
    }

    #[test]
    fn reset_trial_discards_a_retry() {
        let counters = Counters::new();
        counters.counter_add(Some(4), "a", 100);
        counters.reset_trial(4);
        counters.counter_add(Some(4), "a", 1);
        assert_eq!(counters.take_trial(4).counter("a"), 1);
    }

    #[test]
    fn merge_folds_observations() {
        let counters = Counters::new();
        counters.counter_add(Some(0), "a", 1);
        counters.observe(Some(0), "v", 2.0);
        counters.counter_add(Some(1), "a", 2);
        counters.observe(Some(1), "v", 4.0);
        let mut total = TrialObservations::default();
        total.merge(&counters.take_trial(0));
        total.merge(&counters.take_trial(1));
        assert_eq!(total.counter("a"), 3);
        assert_eq!(total.values.get("v").unwrap().count, 2);
        assert_eq!(total.values.get("v").unwrap().sum, 6.0);
    }

    #[test]
    fn to_json_is_deterministic_and_ordered() {
        let counters = Counters::new();
        counters.counter_add(Some(0), "z", 1);
        counters.counter_add(Some(0), "a", 2);
        let obs = counters.take_trial(0);
        let rendered = obs.to_json().render();
        assert_eq!(
            rendered,
            "{\"counters\":{\"a\":2,\"z\":1},\"values\":{},\"spans\":{}}"
        );
    }
}
