//! A minimal JSON encoder.
//!
//! The obs crate is zero-dependency by design (it sits below every other
//! crate in the workspace), so it carries its own encoder instead of
//! using the vendored `serde_json`. Only what traces and progress lines
//! need is implemented: objects preserve insertion order (deterministic
//! output), strings are escaped per RFC 8259, and finite `f64`s render
//! with Rust's shortest round-trip formatting. There is deliberately no
//! parser — consumers read traces back with `serde_json`.

use std::fmt::Write as _;

/// A JSON value tree. Objects are ordered vectors of `(key, value)`
/// pairs: insertion order is preserved on output, which keeps encoded
/// lines deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float; non-finite values encode as `null` (JSON has no NaN).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Appends `key: value` to an object (panics on non-objects — the
    /// builder is only meant for literal construction).
    pub fn push(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        match self {
            JsonValue::Object(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("JsonValue::push on a non-object"),
        }
        self
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::I64(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::F64(x) => {
                if x.is_finite() {
                    let text = x.to_string();
                    out.push_str(&text);
                    // "1" would parse back as an integer; keep floats
                    // recognisably floats.
                    if !text.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => escape_into(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::U64(n)
    }
}

impl From<u32> for JsonValue {
    fn from(n: u32) -> Self {
        JsonValue::U64(u64::from(n))
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::U64(n as u64)
    }
}

impl From<i64> for JsonValue {
    fn from(n: i64) -> Self {
        JsonValue::I64(n)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::F64(x)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::from(true).render(), "true");
        assert_eq!(JsonValue::from(42u64).render(), "42");
        assert_eq!(JsonValue::from(-7i64).render(), "-7");
        assert_eq!(JsonValue::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn floats_render_round_trip_and_nonfinite_is_null() {
        assert_eq!(JsonValue::from(0.5).render(), "0.5");
        assert_eq!(JsonValue::from(1.0).render(), "1.0");
        assert_eq!(JsonValue::from(-2.25e-8).render(), "-0.0000000225");
        assert_eq!(JsonValue::from(f64::NAN).render(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).render(), "null");
        let x = 0.1 + 0.2;
        assert_eq!(JsonValue::from(x).render().parse::<f64>().unwrap(), x);
    }

    #[test]
    fn strings_escape_control_characters() {
        assert_eq!(
            JsonValue::from("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let mut obj = JsonValue::object();
        obj.push("z", 1u64).push("a", 2u64).push("m", "x");
        assert_eq!(obj.render(), "{\"z\":1,\"a\":2,\"m\":\"x\"}");
    }

    #[test]
    fn arrays_render() {
        let arr = JsonValue::Array(vec![JsonValue::from(1u64), JsonValue::Null]);
        assert_eq!(arr.render(), "[1,null]");
    }
}
