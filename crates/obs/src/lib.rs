//! # xbar-obs
//!
//! A zero-dependency observability layer for the attack pipeline:
//! counters, value summaries ("histograms" in the min/max/sum/count
//! sense), and wall-clock spans, collected per campaign trial and
//! emitted as a JSON Lines trace.
//!
//! ## Determinism contract
//!
//! The crate splits everything it records into two classes, mirroring
//! the `journal` vs `progress` split in `xbar-runtime`:
//!
//! * **Deterministic**: counter values, observation value summaries, and
//!   span *counts*. These depend only on the work a trial performs, are
//!   attributed to the trial that performed them (via the thread-local
//!   [`scope`]), and are therefore bit-identical across thread counts
//!   and scheduling orders.
//! * **Timing**: span wall-clock durations, measured with the monotonic
//!   clock. These are reported alongside the deterministic data but live
//!   in their own fields (`total_nanos`) so consumers can diff traces
//!   while ignoring them.
//!
//! ## Architecture
//!
//! * [`Collector`] is the sink trait: counter / observation / span
//!   events, all `&self` (implementations use interior mutability) so a
//!   single collector can be shared across worker threads.
//! * [`NullCollector`] ignores everything; with no scope installed the
//!   instrumentation free functions are a thread-local read and an
//!   `Option` check, so un-observed code pays near-zero overhead.
//! * [`Counters`] is the deterministic registry: a mutex-guarded map
//!   from `(trial, name)` to counts / summaries / span stats, drained
//!   per trial by the campaign executor.
//! * [`TraceWriter`] appends campaign sections (header, one record per
//!   trial, an aggregate end record) to a JSONL trace file.
//! * [`scope`] carries the ambient `(collector, trial)` pair through a
//!   thread so instrumentation sites ([`count`], [`observe`], [`span`])
//!   need no plumbing.
//! * [`metrics`] is the second, *live* telemetry plane: log-bucketed
//!   latency histograms, gauges, and a sharded [`MetricsRegistry`]
//!   keyed by `(victim, metric)` for long-running services (the
//!   campaign service's `stats` op scrapes it). Unlike the trial
//!   plane, its histograms carry timing-class data; its counters and
//!   bucket *totals* remain deterministic and shard-order-invariant.
//!
//! Instrumented layers name their events with the dotted constants in
//! [`names`]; anything that aggregates traces (the `xbar trace
//! summarize` subcommand, `CampaignMetrics`) keys off those names.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod counters;
pub mod json;
pub mod metrics;
pub mod names;
pub mod scope;
pub mod trace;

pub use counters::{Counters, SpanStats, TrialObservations, ValueSummary};
pub use metrics::{Histogram, Metric, MetricsRegistry, MetricsShard, MetricsSnapshot};
pub use scope::{count, observe, span, with_scope, SpanGuard};
pub use trace::TraceWriter;

use std::time::{Duration, Instant};

/// An opaque handle returned by [`Collector::span_begin`] and consumed
/// by [`Collector::span_end`]. Carries the monotonic start time so
/// collectors need no per-span state.
#[derive(Debug, Clone, Copy)]
pub struct SpanToken {
    started: Instant,
}

impl SpanToken {
    /// A token anchored at the current monotonic instant.
    pub fn begin() -> Self {
        SpanToken {
            started: Instant::now(),
        }
    }

    /// Monotonic time elapsed since the token was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

impl Default for SpanToken {
    fn default() -> Self {
        SpanToken::begin()
    }
}

/// Receives observability events.
///
/// All methods take `&self`: implementations are shared across worker
/// threads and use interior mutability. `trial` attributes the event to
/// a campaign trial (`None` for work outside any trial); attribution is
/// what makes the deterministic half of the data thread-count-invariant.
pub trait Collector: Send + Sync {
    /// Adds `delta` to the counter `name`.
    fn counter_add(&self, trial: Option<u64>, name: &str, delta: u64);

    /// Records one observation of the value series `name` (count / sum /
    /// min / max are kept, i.e. a coarse histogram).
    fn observe(&self, trial: Option<u64>, name: &str, value: f64);

    /// Opens a span. The default implementation just anchors a
    /// [`SpanToken`] at the current monotonic instant.
    fn span_begin(&self, _trial: Option<u64>, _name: &str) -> SpanToken {
        SpanToken::begin()
    }

    /// Closes a span opened by [`Collector::span_begin`], recording its
    /// occurrence (deterministic) and wall time (timing).
    fn span_end(&self, trial: Option<u64>, name: &str, token: SpanToken);
}

/// A collector that discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCollector;

impl Collector for NullCollector {
    fn counter_add(&self, _trial: Option<u64>, _name: &str, _delta: u64) {}

    fn observe(&self, _trial: Option<u64>, _name: &str, _value: f64) {}

    fn span_end(&self, _trial: Option<u64>, _name: &str, _token: SpanToken) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_token_elapsed_is_monotone() {
        let token = SpanToken::begin();
        let first = token.elapsed();
        let second = token.elapsed();
        assert!(second >= first);
    }

    #[test]
    fn null_collector_accepts_everything() {
        let collector = NullCollector;
        collector.counter_add(Some(3), "a", 1);
        collector.observe(None, "b", 0.5);
        let token = collector.span_begin(Some(3), "c");
        collector.span_end(Some(3), "c", token);
    }
}
