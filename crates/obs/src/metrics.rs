//! Live service metrics: histograms, gauges, and the sharded
//! per-victim registry behind the campaign service's `stats` plane.
//!
//! This module is the *timing-class* counterpart to the deterministic
//! trial plane in [`crate::counters`]. Where [`crate::Counters`]
//! attributes events to campaign trials and guarantees
//! thread-count-invariant content, the metrics registry attributes
//! events to long-lived *victims* served by a process and is built for
//! concurrent hot paths: it is sharded so that each worker or
//! connection records into its own lock (uncontended in the steady
//! state), and shards are merged only when a snapshot is scraped.
//!
//! The merge is well-defined because every piece of state is a
//! commutative monoid:
//!
//! * counters add;
//! * histograms hold counts in a *fixed, global* log-spaced bucket
//!   layout, so [`Histogram::merge`] is element-wise addition —
//!   associative, commutative, and bit-identical to having recorded
//!   every value into a single histogram (values are integers, so even
//!   the running `sum` is exact);
//! * gauges are last-write-wins and, by convention, only ever set on
//!   shard 0 (via [`MetricsRegistry::gauge_set`]), so the merge never
//!   has to arbitrate between shards.
//!
//! Snapshots carry both *deterministic* fields (counts, sums of
//! integer-valued series, bucket totals — a pure function of the
//! workload served) and *timing* fields (latency quantiles, min/max of
//! wall-clock series). Consumers that diff snapshots across runs, like
//! the cross-worker e2e test in `xbar-serve`, compare the former and
//! only sanity-check the latter.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::JsonValue;

/// The victim-slot name used for server-wide metrics that belong to no
/// particular victim (in-flight gauges, drain state, request errors
/// that never resolved a victim).
pub const SERVER_SCOPE: &str = "_server";

/// Growth factor between consecutive histogram bucket bounds
/// (`2^(1/4)`, ~19% relative width — quantile estimates are within one
/// bucket of the exact order statistic, i.e. within this factor).
pub const BUCKET_GROWTH: f64 = 1.189_207_115_002_721;

/// Number of log-spaced buckets: 4 per octave over 44 octaves covers
/// `1` to `2^44` (~4.9 hours when values are nanoseconds). Values of 0
/// land in the first bucket; larger values clamp into the last.
pub const NUM_BUCKETS: usize = 4 * 44;

/// The shared bucket upper bounds (`le` bounds, inclusive). One global
/// layout — never parameterised per histogram — is what makes
/// [`Histogram::merge`] total: any two histograms can merge.
fn bucket_bounds() -> &'static [f64; NUM_BUCKETS] {
    static BOUNDS: OnceLock<[f64; NUM_BUCKETS]> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut bounds = [0.0; NUM_BUCKETS];
        let mut bound = 1.0f64;
        for slot in bounds.iter_mut() {
            *slot = bound;
            bound *= BUCKET_GROWTH;
        }
        bounds
    })
}

/// Index of the bucket whose `(prev_bound, bound]` range contains
/// `value` (bucket 0 also absorbs 0; the last bucket absorbs overflow).
fn bucket_index(value: u64) -> usize {
    let bounds = bucket_bounds();
    let v = value as f64;
    bounds
        .partition_point(|bound| *bound < v)
        .min(NUM_BUCKETS - 1)
}

/// A fixed-layout log-spaced histogram over non-negative integer
/// values (by convention nanoseconds, sample counts, byte counts, …).
///
/// Tracks exact `count`, `sum`, `min`, `max` alongside the bucket
/// counts; quantiles ([`Histogram::quantile`]) are estimated from the
/// buckets and are within one bucket's relative error
/// ([`BUCKET_GROWTH`]) of the exact order statistic.
///
/// Everything is integer state, so [`Histogram::merge`] is exactly
/// associative and commutative, and merging per-shard histograms is
/// bit-identical to recording every value into one histogram — the
/// contract the property tests in `tests/proptest_metrics.rs` pin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(u128::from(value));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values (saturating).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from the buckets.
    ///
    /// The estimate is the geometric midpoint of the bucket holding the
    /// exact order statistic `sorted[ceil(q·count) - 1]`, clamped to
    /// the exact `[min, max]`; it is therefore within a factor of
    /// [`BUCKET_GROWTH`] of the exact value. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &bucket_count) in self.counts.iter().enumerate() {
            cumulative += bucket_count;
            if cumulative >= rank {
                let bounds = bucket_bounds();
                let hi = bounds[i];
                let lo = if i == 0 {
                    hi / BUCKET_GROWTH
                } else {
                    bounds[i - 1]
                };
                let estimate = (lo * hi).sqrt();
                return estimate.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// Folds `other` into `self` — element-wise bucket addition plus
    /// exact min/max/sum/count merges. Associative, commutative, and
    /// equal to single-histogram recording of the union of values.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(le_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        let bounds = bucket_bounds();
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(i, &count)| (bounds[i], count))
            .collect()
    }

    /// The JSON snapshot encoding. `count`, `sum`, `min`, `max` and the
    /// bucket counts are deterministic for a deterministic workload;
    /// `p50`/`p90`/`p99`/`p999` are bucket estimates. An empty
    /// histogram encodes with all-zero scalars and no buckets.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.push("count", self.count)
            .push("sum", self.sum.min(u128::from(u64::MAX)) as u64)
            .push("min", self.min())
            .push("max", self.max())
            .push("p50", self.quantile(0.50))
            .push("p90", self.quantile(0.90))
            .push("p99", self.quantile(0.99))
            .push("p999", self.quantile(0.999));
        let buckets = self
            .nonzero_buckets()
            .into_iter()
            .map(|(le, count)| JsonValue::Array(vec![JsonValue::F64(le), JsonValue::U64(count)]))
            .collect();
        obj.push("buckets", JsonValue::Array(buckets));
        obj
    }
}

/// One live metric: a monotone counter, a last-write-wins gauge, or a
/// log-bucketed histogram.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(u64),
    /// An instantaneous level (set, not accumulated).
    Gauge(f64),
    /// A value distribution.
    Histogram(Histogram),
}

type MetricKey = (String, String);

/// One shard of the live metrics plane: a mutex-guarded map from
/// `(victim, metric)` to [`Metric`].
///
/// Hot paths hold only their own shard's lock, so with one shard per
/// worker/connection the common case is uncontended. All methods take
/// `&self`.
#[derive(Debug, Default)]
pub struct MetricsShard {
    inner: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl MetricsShard {
    /// An empty shard.
    pub fn new() -> Self {
        MetricsShard::default()
    }

    /// Adds `delta` to the counter `(victim, name)`.
    ///
    /// If the key already holds a different metric kind the call is
    /// ignored (names are library constants; a kind clash is a bug
    /// caught by `debug_assert`).
    pub fn counter_add(&self, victim: &str, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics shard lock");
        let entry = inner
            .entry((victim.to_string(), name.to_string()))
            .or_insert(Metric::Counter(0));
        match entry {
            Metric::Counter(total) => *total += delta,
            _ => debug_assert!(false, "metric {victim}/{name} is not a counter"),
        }
    }

    /// Sets the gauge `(victim, name)` to `value`.
    pub fn gauge_set(&self, victim: &str, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("metrics shard lock");
        let entry = inner
            .entry((victim.to_string(), name.to_string()))
            .or_insert(Metric::Gauge(0.0));
        match entry {
            Metric::Gauge(current) => *current = value,
            _ => debug_assert!(false, "metric {victim}/{name} is not a gauge"),
        }
    }

    /// Records `value` into the histogram `(victim, name)`.
    pub fn record(&self, victim: &str, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics shard lock");
        let entry = inner
            .entry((victim.to_string(), name.to_string()))
            .or_insert_with(|| Metric::Histogram(Histogram::new()));
        match entry {
            Metric::Histogram(histogram) => histogram.record(value),
            _ => debug_assert!(false, "metric {victim}/{name} is not a histogram"),
        }
    }

    /// A copy of this shard's metrics (used by the registry merge).
    fn drain_copy(&self) -> BTreeMap<MetricKey, Metric> {
        self.inner.lock().expect("metrics shard lock").clone()
    }
}

/// The sharded live-metrics registry.
///
/// Construction fixes the shard count; recording sites obtain an
/// `Arc<MetricsShard>` via [`MetricsRegistry::shard`] (indices wrap, so
/// any worker/connection ordinal is a valid pick) and record into it
/// without touching any global lock. [`MetricsRegistry::snapshot`]
/// merges all shards into one coherent [`MetricsSnapshot`]; because
/// counter addition and [`Histogram::merge`] are associative and
/// commutative, the merged deterministic fields are independent of how
/// work was spread over shards.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Vec<Arc<MetricsShard>>,
}

impl MetricsRegistry {
    /// A registry with `shards` shards (at least 1).
    pub fn new(shards: usize) -> Self {
        MetricsRegistry {
            shards: (0..shards.max(1))
                .map(|_| Arc::new(MetricsShard::new()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard for ordinal `index` (wraps modulo the shard count).
    pub fn shard(&self, index: usize) -> Arc<MetricsShard> {
        Arc::clone(&self.shards[index % self.shards.len()])
    }

    /// Sets a gauge on shard 0 — the convention that keeps gauges
    /// single-writer so the shard merge never arbitrates between stale
    /// copies.
    pub fn gauge_set(&self, victim: &str, name: &str, value: f64) {
        self.shards[0].gauge_set(victim, name, value);
    }

    /// Merges every shard into one coherent snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut merged: BTreeMap<MetricKey, Metric> = BTreeMap::new();
        for shard in &self.shards {
            for (key, metric) in shard.drain_copy() {
                match merged.entry(key) {
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(metric);
                    }
                    std::collections::btree_map::Entry::Occupied(mut slot) => {
                        match (slot.get_mut(), metric) {
                            (Metric::Counter(total), Metric::Counter(delta)) => *total += delta,
                            (Metric::Histogram(mine), Metric::Histogram(theirs)) => {
                                mine.merge(&theirs)
                            }
                            // Gauges are single-writer (shard 0); a
                            // duplicate on another shard is ignored.
                            (Metric::Gauge(_), Metric::Gauge(_)) => {}
                            _ => debug_assert!(false, "metric kind clash across shards"),
                        }
                    }
                }
            }
        }
        MetricsSnapshot { metrics: merged }
    }
}

/// A coherent point-in-time merge of every shard's metrics, grouped by
/// victim on encode.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    metrics: BTreeMap<MetricKey, Metric>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        MetricsSnapshot {
            metrics: BTreeMap::new(),
        }
    }

    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The metric `(victim, name)`, if present.
    pub fn get(&self, victim: &str, name: &str) -> Option<&Metric> {
        self.metrics.get(&(victim.to_string(), name.to_string()))
    }

    /// The counter `(victim, name)`, or 0 if absent.
    pub fn counter(&self, victim: &str, name: &str) -> u64 {
        match self.get(victim, name) {
            Some(Metric::Counter(total)) => *total,
            _ => 0,
        }
    }

    /// The victims (scopes) present, sorted and deduplicated.
    pub fn victims(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.metrics.keys().map(|(v, _)| v.as_str()).collect();
        names.dedup();
        names
    }

    /// Iterates `(victim, name, metric)` in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, &Metric)> {
        self.metrics
            .iter()
            .map(|((victim, name), metric)| (victim.as_str(), name.as_str(), metric))
    }

    /// The snapshot as JSON: `{"victims": {victim: {"counters": {...},
    /// "gauges": {...}, "histograms": {name: {...}}}}}`.
    pub fn to_json(&self) -> JsonValue {
        let mut victims = JsonValue::object();
        let mut current: Option<(&str, JsonValue, JsonValue, JsonValue)> = None;
        let flush = |victims: &mut JsonValue,
                     entry: Option<(&str, JsonValue, JsonValue, JsonValue)>| {
            if let Some((victim, counters, gauges, histograms)) = entry {
                let mut obj = JsonValue::object();
                obj.push("counters", counters)
                    .push("gauges", gauges)
                    .push("histograms", histograms);
                victims.push(victim, obj);
            }
        };
        for (victim, name, metric) in self.iter() {
            let start_new = !matches!(&current, Some((v, ..)) if *v == victim);
            if start_new {
                flush(&mut victims, current.take());
                current = Some((
                    victim,
                    JsonValue::object(),
                    JsonValue::object(),
                    JsonValue::object(),
                ));
            }
            let (_, counters, gauges, histograms) = current.as_mut().expect("just set");
            match metric {
                Metric::Counter(total) => {
                    counters.push(name, *total);
                }
                Metric::Gauge(value) => {
                    gauges.push(name, *value);
                }
                Metric::Histogram(histogram) => {
                    histograms.push(name, histogram.to_json());
                }
            }
        }
        flush(&mut victims, current.take());
        let mut obj = JsonValue::object();
        obj.push("victims", victims);
        obj
    }

    /// The snapshot in Prometheus text exposition format. Metric names
    /// are sanitised (`serve.request_ns` → `xbar_serve_request_ns`),
    /// the victim becomes a `victim` label, counters gain `_total`, and
    /// histograms emit cumulative `_bucket{le=...}` series plus `_sum`
    /// and `_count`.
    pub fn to_prometheus(&self) -> String {
        fn sanitise(name: &str) -> String {
            let cleaned: String = name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            format!("xbar_{cleaned}")
        }

        // Group by metric name so each gets exactly one # TYPE header.
        let mut by_name: BTreeMap<&str, Vec<(&str, &Metric)>> = BTreeMap::new();
        for (victim, name, metric) in self.iter() {
            by_name.entry(name).or_default().push((victim, metric));
        }
        let mut out = String::new();
        for (name, series) in by_name {
            let base = sanitise(name);
            match series.first().map(|(_, m)| m) {
                Some(Metric::Counter(_)) => {
                    out.push_str(&format!("# TYPE {base}_total counter\n"));
                    for (victim, metric) in &series {
                        if let Metric::Counter(total) = metric {
                            out.push_str(&format!("{base}_total{{victim=\"{victim}\"}} {total}\n"));
                        }
                    }
                }
                Some(Metric::Gauge(_)) => {
                    out.push_str(&format!("# TYPE {base} gauge\n"));
                    for (victim, metric) in &series {
                        if let Metric::Gauge(value) = metric {
                            out.push_str(&format!("{base}{{victim=\"{victim}\"}} {value}\n"));
                        }
                    }
                }
                Some(Metric::Histogram(_)) => {
                    out.push_str(&format!("# TYPE {base} histogram\n"));
                    for (victim, metric) in &series {
                        if let Metric::Histogram(histogram) = metric {
                            let mut cumulative = 0u64;
                            for (le, count) in histogram.nonzero_buckets() {
                                cumulative += count;
                                out.push_str(&format!(
                                    "{base}_bucket{{victim=\"{victim}\",le=\"{le}\"}} {cumulative}\n"
                                ));
                            }
                            out.push_str(&format!(
                                "{base}_bucket{{victim=\"{victim}\",le=\"+Inf\"}} {}\n",
                                histogram.count()
                            ));
                            out.push_str(&format!(
                                "{base}_sum{{victim=\"{victim}\"}} {}\n",
                                histogram.sum().min(u128::from(u64::MAX))
                            ));
                            out.push_str(&format!(
                                "{base}_count{{victim=\"{victim}\"}} {}\n",
                                histogram.count()
                            ));
                        }
                    }
                }
                None => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_clamped() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        let mut last = 0;
        for v in [2u64, 10, 1000, 1 << 20, 1 << 43] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn histogram_tracks_exact_scalars() {
        let mut h = Histogram::new();
        for v in [5u64, 10, 1000, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1018);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 254.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_within_one_bucket() {
        let mut h = Histogram::new();
        let values: Vec<u64> = (1..=1000).map(|i| i * 7 + 13).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1] as f64;
            let estimate = h.quantile(q);
            let ratio = estimate / exact;
            assert!(
                (1.0 / BUCKET_GROWTH..=BUCKET_GROWTH).contains(&ratio),
                "q={q}: estimate {estimate} vs exact {exact} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn empty_histogram_is_clean() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        let rendered = h.to_json().render();
        assert!(rendered.contains("\"count\":0"), "{rendered}");
        assert!(rendered.contains("\"buckets\":[]"), "{rendered}");
        assert!(!rendered.contains("null"), "{rendered}");
    }

    #[test]
    fn merge_equals_single_recording() {
        let values: Vec<u64> = (0..200).map(|i| (i * i + 1) as u64).collect();
        let mut single = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            single.record(v);
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, single);
        assert_eq!(ba, single);
    }

    #[test]
    fn registry_merges_shards_deterministically() {
        let registry = MetricsRegistry::new(3);
        for i in 0..30u64 {
            let shard = registry.shard(i as usize);
            shard.counter_add("mnist", "serve.queries", 1);
            shard.record("mnist", "serve.request_ns", 100 + i);
        }
        registry.gauge_set("_server", "serve.inflight", 4.0);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("mnist", "serve.queries"), 30);
        match snapshot.get("mnist", "serve.request_ns") {
            Some(Metric::Histogram(h)) => {
                assert_eq!(h.count(), 30);
                assert_eq!(h.min(), 100);
                assert_eq!(h.max(), 129);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        assert!(matches!(
            snapshot.get("_server", "serve.inflight"),
            Some(Metric::Gauge(v)) if *v == 4.0
        ));
        // The same workload recorded on one shard snapshots identically
        // (modulo nothing: all state is a commutative monoid).
        let solo = MetricsRegistry::new(1);
        for i in 0..30u64 {
            let shard = solo.shard(0);
            shard.counter_add("mnist", "serve.queries", 1);
            shard.record("mnist", "serve.request_ns", 100 + i);
        }
        solo.gauge_set("_server", "serve.inflight", 4.0);
        assert_eq!(solo.snapshot(), snapshot);
    }

    #[test]
    fn snapshot_json_groups_by_victim() {
        let registry = MetricsRegistry::new(2);
        registry.shard(0).counter_add("a", "serve.requests", 2);
        registry.shard(1).counter_add("b", "serve.requests", 3);
        registry.shard(0).record("a", "serve.request_ns", 50);
        registry.gauge_set("_server", "serve.inflight", 0.0);
        let rendered = registry.snapshot().to_json().render();
        assert!(rendered.contains("\"victims\""), "{rendered}");
        assert!(rendered.contains("\"a\""), "{rendered}");
        assert!(rendered.contains("\"serve.requests\":2"), "{rendered}");
        assert!(rendered.contains("\"serve.requests\":3"), "{rendered}");
        assert!(rendered.contains("\"serve.inflight\":0.0"), "{rendered}");
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let registry = MetricsRegistry::new(1);
        let shard = registry.shard(0);
        shard.counter_add("mnist", "serve.queries", 7);
        for v in [10u64, 20, 20, 4000] {
            shard.record("mnist", "serve.request_ns", v);
        }
        registry.gauge_set("_server", "serve.inflight", 2.0);
        let text = registry.snapshot().to_prometheus();
        assert!(
            text.contains("# TYPE xbar_serve_queries_total counter"),
            "{text}"
        );
        assert!(
            text.contains("xbar_serve_queries_total{victim=\"mnist\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE xbar_serve_request_ns histogram"),
            "{text}"
        );
        assert!(
            text.contains("xbar_serve_request_ns_count{victim=\"mnist\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("le=\"+Inf\"}} 4") || text.contains("le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(text.contains("# TYPE xbar_serve_inflight gauge"), "{text}");
        // Bucket series are cumulative and end at the total count.
        let last_bucket = text
            .lines()
            .rfind(|l| l.starts_with("xbar_serve_request_ns_bucket"))
            .unwrap();
        assert!(last_bucket.ends_with(" 4"), "{last_bucket}");
    }
}
