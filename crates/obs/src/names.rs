//! Well-known event names used by the instrumented crates.
//!
//! Names are dotted `layer.event` strings. Instrumentation sites use
//! these constants rather than string literals so that aggregation code
//! (the campaign executor's per-trial totals, `xbar trace summarize`)
//! and the emitting code cannot drift apart.

/// One oracle query consumed against the attacker's budget
/// (`Oracle::query` / `Oracle::query_batch`).
pub const ORACLE_QUERY: &str = "oracle.query";

/// A calibrated power reading returned to the attacker, recorded as an
/// observation (value series) so traces carry the power totals.
pub const ORACLE_POWER: &str = "oracle.power";

/// One power-probe measurement (basis or random input) issued by the
/// probing routines in `xbar-core`.
pub const PROBE_MEASUREMENT: &str = "probe.measurement";

/// One analog matrix-vector product evaluated on the crossbar.
pub const XBAR_ANALOG_MVM: &str = "xbar.analog_mvm";

/// One total-supply-current / power-model readout of the crossbar.
pub const XBAR_POWER_READ: &str = "xbar.power_read";

/// One iterative IR-drop nodal solve.
pub const XBAR_IR_DROP_SOLVE: &str = "xbar.ir_drop_solve";

/// One batched evaluation call (`EvalBackend::mvm_prepared` and
/// friends), regardless of how many samples the batch carried.
pub const XBAR_MVM_BATCH: &str = "xbar.mvm_batch";

/// Observation (value series): number of samples in each batched
/// evaluation call — the batch occupancy summary.
pub const XBAR_BATCH_OCCUPANCY: &str = "xbar.batch_occupancy";

/// One fault plan compiled from a `FaultSpec` (`FaultSpec::compile`).
pub const XBAR_FAULT_PLAN_COMPILE: &str = "xbar.fault_plan_compile";

/// One fault plan applied to a programmed array (one faulted copy
/// materialised).
pub const XBAR_FAULT_APPLY: &str = "xbar.fault_apply";

/// Devices pinned to a rail (stuck-at-on/off) by an applied fault plan,
/// counted once per application.
pub const XBAR_FAULT_STUCK_DEVICES: &str = "xbar.fault_stuck_devices";

/// Observation (value series): fraction of devices a fault plan marks
/// stuck, recorded once per compilation.
pub const XBAR_FAULT_STUCK_FRACTION: &str = "xbar.fault_stuck_fraction";

/// One per-query transient perturbation materialised (a read-disturbed
/// copy of the deployed array for a single query).
pub const XBAR_TRANSIENT_APPLY: &str = "xbar.transient_apply";

/// Devices flipped to a rail by per-query read-disturb transients,
/// summed over every perturbed query.
pub const XBAR_TRANSIENT_FLIPS: &str = "xbar.transient_flips";

/// One drift epoch advanced by the oracle's drift schedule (the fault
/// plan recompiled at a later `drift_time` and re-applied).
pub const ORACLE_DRIFT_ADVANCE: &str = "oracle.drift_advance";

/// One recalibration of a cached column-norm estimate (a fresh probe
/// issued because a recalibration policy declared the estimate stale).
pub const PROBE_RECALIBRATION: &str = "probe.recalibration";

/// One gradient-sign (FGSM/FGV) batch crafted.
pub const ATTACK_FGSM_BATCH: &str = "attack.fgsm_batch";

/// One PGD step applied to a batch.
pub const ATTACK_PGD_STEP: &str = "attack.pgd_step";

/// One candidate pixel examined by the single-pixel attack search.
pub const ATTACK_PIXEL_STEP: &str = "attack.pixel_step";

/// Span: a full campaign trial (`runner.run`, final attempt).
pub const SPAN_TRIAL: &str = "trial";

/// Span: probing the column norms of the victim.
pub const SPAN_PROBE: &str = "probe";

/// Span: collecting the surrogate's training queries from the oracle.
pub const SPAN_COLLECT_QUERIES: &str = "blackbox.collect_queries";

/// Span: training the surrogate network.
pub const SPAN_TRAIN_SURROGATE: &str = "blackbox.train_surrogate";

/// Span: crafting adversarial examples from the surrogate.
pub const SPAN_CRAFT: &str = "blackbox.craft";

/// Span: evaluating the oracle on clean and adversarial inputs.
pub const SPAN_EVALUATE: &str = "blackbox.evaluate";

/// Span: materialising a faulted copy of a programmed array
/// (`FaultPlan::apply`).
pub const SPAN_FAULT_APPLY: &str = "faults.apply";

/// Span: one fault-robustness sweep trial (deploy faulted oracle, probe,
/// attack, evaluate).
pub const SPAN_FAULT_TRIAL: &str = "faults.sweep_trial";

/// Span: one device-lifetime sweep trial (deploy decaying oracle, probe,
/// recalibrate, attack, evaluate).
pub const SPAN_LIFETIME_TRIAL: &str = "lifetime.sweep_trial";

/// One power observation collected for posterior inference
/// (`xbar-infer`), through either the budgeted or the keyed oracle
/// entry point.
pub const INFER_OBSERVATION: &str = "infer.observation";

/// One MCMC transition applied (any kernel), summed across chains.
pub const INFER_MCMC_STEP: &str = "infer.mcmc_step";

/// One likelihood (or posterior) density evaluation spent by an MCMC
/// transition, summed across chains.
pub const INFER_LIKELIHOOD_EVAL: &str = "infer.likelihood_eval";

/// One MCMC chain run to completion.
pub const INFER_CHAIN: &str = "infer.chain";

/// Span: a multi-chain posterior sampling run (`run_chains`), covering
/// every chain and the join.
pub const SPAN_INFER_CHAINS: &str = "infer.chains";

/// Span: one posterior-inference sweep trial (collect observations,
/// sample chains, summarise, attack, evaluate).
pub const SPAN_INFER_TRIAL: &str = "infer.sweep_trial";

/// One attack session admitted by the campaign service (`xbar serve`),
/// counting resumes as well as fresh sessions.
pub const SERVE_SESSIONS: &str = "serve.sessions";

/// A session turned away by admission control (session table full).
pub const SERVE_ADMISSION_REJECT: &str = "serve.admission_reject";

/// One coalesced evaluation batch flushed by the campaign service —
/// however many sessions' queries it carried.
pub const SERVE_COALESCED_BATCH: &str = "serve.coalesced_batch";

/// Observation (value series): number of queries in each coalesced
/// batch the campaign service flushed.
pub const SERVE_BATCH_OCCUPANCY: &str = "serve.batch_occupancy";

/// Observation (value series): evaluation-queue depth sampled each time
/// the campaign service enqueues a job.
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";

/// Span: one client request handled by the campaign service, from parse
/// to response write.
pub const SPAN_SERVE_REQUEST: &str = "serve.request";

// --- Live metrics plane (crate::metrics, scraped via the `stats` op) ---
//
// These name the campaign service's *live* metrics, keyed by victim in
// a [`crate::MetricsRegistry`] rather than by trial. Counters and
// histogram bucket totals are deterministic for a deterministic
// workload; `*_ns` histograms carry wall-clock timing.

/// Live counter: client requests handled (any op, any outcome).
pub const SERVE_REQUESTS: &str = "serve.requests";

/// Live counter: oracle queries answered on behalf of a victim.
pub const SERVE_QUERIES: &str = "serve.queries";

/// Live counter name prefix: rejected requests, one counter per
/// rejection code (`serve.reject.busy`, `serve.reject.session_table_full`,
/// ...).
pub const SERVE_REJECT_PREFIX: &str = "serve.reject.";

/// Live histogram (ns): end-to-end per-request latency, from line parse
/// to response write.
pub const SERVE_REQUEST_NS: &str = "serve.request_ns";

/// Live histogram (ns): time a query job waited in the coalescing queue
/// before a worker picked it up.
pub const SERVE_QUEUE_WAIT_NS: &str = "serve.queue_wait_ns";

/// Live histogram (queries): occupancy of each per-victim evaluation
/// batch a worker flushed. Its *sum* equals total queries evaluated and
/// is deterministic; its count/distribution depends on timing.
pub const SERVE_FLUSH_OCCUPANCY: &str = "serve.flush_occupancy";

/// Live counter: batches flushed because they reached the size cap.
pub const SERVE_FLUSH_SIZE: &str = "serve.flush_size";

/// Live counter: batches flushed before filling — deadline expiry,
/// queue drain, or coalescing disabled.
pub const SERVE_FLUSH_DEADLINE: &str = "serve.flush_deadline";

/// Live histogram (ns): latency of each durable session-journal write.
pub const SERVE_JOURNAL_WRITE_NS: &str = "serve.journal_write_ns";

/// Live gauge: query jobs currently in flight (enqueued, not yet
/// answered), sampled at scrape time.
pub const SERVE_INFLIGHT: &str = "serve.inflight";

/// Live gauge: attached sessions in the session table, sampled at
/// scrape time.
pub const SERVE_ATTACHED_SESSIONS: &str = "serve.attached_sessions";

/// Live gauge: 1 while the server is draining (shutdown requested),
/// else 0.
pub const SERVE_DRAINING: &str = "serve.draining";
