//! The thread-local instrumentation scope.
//!
//! A scope binds `(collector, trial)` to the current thread so that
//! instrumentation sites deep in the crossbar / attack code can emit
//! events with no plumbing: they call the free functions [`count`],
//! [`observe`] and [`span`], which look up the ambient scope and forward
//! to its collector. With no scope installed the functions are a
//! thread-local read plus an `Option` check — effectively free — which
//! is what lets the hot paths stay instrumented unconditionally.
//!
//! Scopes nest (a stack per thread); the innermost wins. A scope is
//! installed with [`with_scope`] and removed when the closure returns,
//! including on panic.
//!
//! Scopes do **not** cross thread boundaries: work spawned onto other
//! threads (e.g. the rayon-backed matmul in `xbar-linalg`) is not
//! observed. The instrumented call sites in this workspace all run on
//! the thread that owns the trial, so per-trial counters stay
//! thread-count-invariant.

use std::cell::RefCell;
use std::sync::Arc;

use crate::{Collector, SpanToken};

struct ActiveScope {
    collector: Arc<dyn Collector>,
    trial: Option<u64>,
}

thread_local! {
    static SCOPES: RefCell<Vec<ActiveScope>> = const { RefCell::new(Vec::new()) };
}

/// Pops the scope pushed by [`with_scope`], also on unwind.
struct PopOnDrop;

impl Drop for PopOnDrop {
    fn drop(&mut self) {
        SCOPES.with(|scopes| {
            scopes.borrow_mut().pop();
        });
    }
}

/// Runs `f` with `(collector, trial)` installed as the current thread's
/// instrumentation scope.
pub fn with_scope<R>(
    collector: Arc<dyn Collector>,
    trial: Option<u64>,
    f: impl FnOnce() -> R,
) -> R {
    SCOPES.with(|scopes| {
        scopes.borrow_mut().push(ActiveScope { collector, trial });
    });
    let _pop = PopOnDrop;
    f()
}

fn with_active<R>(f: impl FnOnce(&ActiveScope) -> R) -> Option<R> {
    SCOPES.with(|scopes| scopes.borrow().last().map(f))
}

/// Adds `delta` to counter `name` in the ambient scope (no-op without
/// a scope).
pub fn count(name: &str, delta: u64) {
    with_active(|scope| scope.collector.counter_add(scope.trial, name, delta));
}

/// Records one observation of value series `name` in the ambient scope
/// (no-op without a scope).
pub fn observe(name: &str, value: f64) {
    with_active(|scope| scope.collector.observe(scope.trial, name, value));
}

/// Opens a span named `name` in the ambient scope; the span closes when
/// the returned guard drops. Without a scope the guard is inert.
pub fn span(name: &'static str) -> SpanGuard {
    let open = with_active(|scope| OpenSpan {
        collector: scope.collector.clone(),
        trial: scope.trial,
        name,
        token: scope.collector.span_begin(scope.trial, name),
    });
    SpanGuard { open }
}

struct OpenSpan {
    collector: Arc<dyn Collector>,
    trial: Option<u64>,
    name: &'static str,
    token: SpanToken,
}

/// Closes its span on drop. Returned by [`span`].
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            open.collector.span_end(open.trial, open.name, open.token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Counters;

    #[test]
    fn events_without_a_scope_are_dropped() {
        count("nobody", 1);
        observe("nobody", 1.0);
        drop(span("nobody"));
    }

    #[test]
    fn scope_routes_events_to_its_trial() {
        let counters = Arc::new(Counters::new());
        let collector: Arc<dyn Collector> = counters.clone();
        with_scope(collector, Some(7), || {
            count("q", 2);
            observe("p", 0.25);
            let _span = span("work");
        });
        let obs = counters.take_trial(7);
        assert_eq!(obs.counter("q"), 2);
        assert_eq!(obs.values.get("p").unwrap().count, 1);
        assert_eq!(obs.spans.get("work").unwrap().count, 1);
    }

    #[test]
    fn scopes_nest_innermost_wins() {
        let outer = Arc::new(Counters::new());
        let inner = Arc::new(Counters::new());
        with_scope(outer.clone() as Arc<dyn Collector>, Some(0), || {
            count("n", 1);
            with_scope(inner.clone() as Arc<dyn Collector>, Some(1), || {
                count("n", 10);
            });
            count("n", 1);
        });
        assert_eq!(outer.take_trial(0).counter("n"), 2);
        assert_eq!(inner.take_trial(1).counter("n"), 10);
    }

    #[test]
    fn scope_pops_on_panic() {
        let counters = Arc::new(Counters::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_scope(counters.clone() as Arc<dyn Collector>, Some(3), || {
                panic!("boom")
            })
        }));
        assert!(result.is_err());
        // The scope is gone: this count goes nowhere.
        count("after", 1);
        assert!(counters.take_trial(3).is_empty());
    }

    #[test]
    fn scope_is_per_thread() {
        let counters = Arc::new(Counters::new());
        with_scope(counters.clone() as Arc<dyn Collector>, Some(0), || {
            std::thread::scope(|scope| {
                scope.spawn(|| count("elsewhere", 5));
            });
            count("here", 1);
        });
        let obs = counters.take_trial(0);
        assert_eq!(obs.counter("here"), 1);
        assert_eq!(obs.counter("elsewhere"), 0);
    }
}
