//! The JSONL trace writer.
//!
//! A trace file holds one or more *campaign sections*, each of which is:
//!
//! 1. a header line: `{"kind":"xbar-trace","format_version":1,
//!    "campaign":…,"campaign_seed":…,"total_trials":…}`
//! 2. one `{"kind":"trial",…}` line per executed trial, in completion
//!    order, carrying the trial's counters / value summaries / span
//!    stats (see [`TrialObservations::to_json`]),
//! 3. a `{"kind":"end",…}` line with campaign totals: the merged
//!    observations plus completed / failed / skipped counts.
//!
//! Counter and value content is deterministic (thread-count-invariant);
//! the `wall_nanos` / `elapsed_nanos` / `total_nanos` fields are the
//! only wall-clock data. Each line is flushed as it is written, like
//! the campaign journal.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::time::Duration;

use crate::counters::TrialObservations;
use crate::json::JsonValue;

/// The `kind` tag of a trace header line.
pub const TRACE_KIND: &str = "xbar-trace";

/// Current trace format version.
pub const TRACE_FORMAT_VERSION: u32 = 1;

fn duration_nanos(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

fn extend_with_observations(record: &mut JsonValue, observations: &TrialObservations) {
    if let (JsonValue::Object(fields), JsonValue::Object(extra)) = (record, observations.to_json())
    {
        fields.extend(extra);
    }
}

/// Writes trace lines to a file, flushing each line.
pub struct TraceWriter {
    out: BufWriter<File>,
}

impl TraceWriter {
    /// Creates (truncating) a trace file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(TraceWriter {
            out: BufWriter::new(File::create(path)?),
        })
    }

    fn write_line(&mut self, value: &JsonValue) -> io::Result<()> {
        self.out.write_all(value.render().as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()
    }

    /// Opens a campaign section.
    pub fn campaign_header(
        &mut self,
        campaign: &str,
        campaign_seed: u64,
        total_trials: usize,
    ) -> io::Result<()> {
        let mut record = JsonValue::object();
        record
            .push("kind", TRACE_KIND)
            .push("format_version", TRACE_FORMAT_VERSION)
            .push("campaign", campaign)
            .push("campaign_seed", campaign_seed)
            .push("total_trials", total_trials);
        self.write_line(&record)
    }

    /// Writes one finished trial's record.
    pub fn trial(
        &mut self,
        trial: usize,
        ok: bool,
        attempts: u32,
        wall: Duration,
        observations: &TrialObservations,
    ) -> io::Result<()> {
        let mut record = JsonValue::object();
        record
            .push("kind", "trial")
            .push("trial", trial)
            .push("status", if ok { "ok" } else { "failed" })
            .push("attempts", attempts)
            .push("wall_nanos", duration_nanos(wall));
        extend_with_observations(&mut record, observations);
        self.write_line(&record)
    }

    /// Closes a campaign section with its aggregate totals.
    pub fn end(
        &mut self,
        completed: usize,
        failed: usize,
        skipped: usize,
        elapsed: Duration,
        totals: &TrialObservations,
    ) -> io::Result<()> {
        let mut record = JsonValue::object();
        record
            .push("kind", "end")
            .push("completed", completed)
            .push("failed", failed)
            .push("skipped", skipped)
            .push("elapsed_nanos", duration_nanos(elapsed));
        extend_with_observations(&mut record, totals);
        self.write_line(&record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;
    use crate::Counters;

    #[test]
    fn trace_sections_round_trip_as_lines() {
        let path = std::env::temp_dir().join(format!(
            "xbar_obs_trace_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let counters = Counters::new();
        counters.counter_add(Some(0), "oracle.query", 12);
        counters.observe(Some(0), "oracle.power", 1.5);

        let mut writer = TraceWriter::create(&path).unwrap();
        writer.campaign_header("fig4", 42, 2).unwrap();
        let obs = counters.take_trial(0);
        writer
            .trial(0, true, 1, Duration::from_millis(3), &obs)
            .unwrap();
        writer.end(1, 0, 1, Duration::from_millis(5), &obs).unwrap();
        drop(writer);

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"kind\":\"xbar-trace\""));
        assert!(lines[0].contains("\"campaign\":\"fig4\""));
        assert!(lines[1].contains("\"kind\":\"trial\""));
        assert!(lines[1].contains("\"oracle.query\":12"));
        assert!(lines[1].contains("\"status\":\"ok\""));
        assert!(lines[2].contains("\"kind\":\"end\""));
        assert!(lines[2].contains("\"skipped\":1"));
    }
}
