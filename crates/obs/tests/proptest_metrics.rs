//! Property tests for the live-metrics histogram
//! ([`xbar_obs::Histogram`]): quantile error bounds, merge algebra, and
//! clean zero-observation serialisation — the contracts the sharded
//! [`xbar_obs::MetricsRegistry`] merge relies on.

use proptest::prelude::*;
use xbar_obs::metrics::BUCKET_GROWTH;
use xbar_obs::Histogram;

/// Exact order statistic matching `Histogram::quantile`'s rank rule:
/// `sorted[ceil(q·count) - 1]`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn record_all(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Quantile estimates are within one bucket's relative error
    /// (a factor of `BUCKET_GROWTH`) of the exact order statistic, for
    /// every probed quantile. Values of 0 need an absolute check: the
    /// first bucket also absorbs them, so the estimate may sit anywhere
    /// in (0, 1].
    #[test]
    fn quantile_within_one_bucket(
        values in prop::collection::vec(0u64..1_000_000_000, 1..400),
        q in 0.0f64..=1.0,
    ) {
        let h = record_all(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let estimate = h.quantile(q);
        if exact == 0 {
            prop_assert!(estimate <= 1.0, "estimate {} for exact 0", estimate);
        } else {
            let ratio = estimate / exact as f64;
            prop_assert!(
                (1.0 / BUCKET_GROWTH..=BUCKET_GROWTH).contains(&ratio),
                "q={}: estimate {} vs exact {} (ratio {})",
                q, estimate, exact, ratio
            );
        }
    }

    /// `merge` is commutative and associative, and a merge of disjoint
    /// shards is bit-identical to recording every value into a single
    /// histogram — the property that makes the sharded registry's
    /// snapshot independent of how work was spread over shards.
    #[test]
    fn merge_is_associative_commutative_and_lossless(
        a in prop::collection::vec(0u64..1_000_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000_000, 0..100),
        c in prop::collection::vec(0u64..1_000_000_000, 0..100),
    ) {
        let (ha, hb, hc) = (record_all(&a), record_all(&b), record_all(&c));

        // Commutative: a+b == b+a.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // Associative: (a+b)+c == a+(b+c).
        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Lossless: merging shards equals single-histogram recording.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&ab_c, &record_all(&all));
    }

    /// Scalar invariants hold for any workload: exact count/sum/min/max
    /// and bucket totals summing to the count.
    #[test]
    fn scalars_are_exact(values in prop::collection::vec(0u64..1_000_000_000, 1..300)) {
        let h = record_all(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().map(|&v| u128::from(v)).sum::<u128>());
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        let bucket_total: u64 = h.nonzero_buckets().iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(bucket_total, h.count());
    }
}

#[test]
fn zero_observation_histogram_serializes_cleanly() {
    let h = Histogram::new();
    let rendered = h.to_json().render();
    assert!(rendered.contains("\"count\":0"), "{rendered}");
    assert!(rendered.contains("\"min\":0"), "{rendered}");
    assert!(rendered.contains("\"max\":0"), "{rendered}");
    assert!(rendered.contains("\"buckets\":[]"), "{rendered}");
    assert!(!rendered.contains("null"), "{rendered}");
    // Merging with an empty histogram is the identity.
    let mut seeded = Histogram::new();
    seeded.record(42);
    let mut merged = seeded.clone();
    merged.merge(&h);
    assert_eq!(merged, seeded);
}
