//! The campaign model: a named, seeded grid of trial specifications.

use serde::Serialize;

/// A campaign: an ordered grid of trial specifications, a campaign-level
/// seed, and a name. Trial index = position in `trials`.
///
/// The grid must be *fully enumerated up front*: resumability and the
/// per-trial RNG streams both key on the trial index, so the meaning of
/// an index must never change between runs. Build the same campaign the
/// same way every time (the [`Campaign::fingerprint`] guards this at
/// resume time).
#[derive(Debug, Clone)]
pub struct Campaign<S> {
    /// Human-readable campaign name; recorded in the journal header.
    pub name: String,
    /// The seed all per-trial RNG streams derive from.
    pub seed: u64,
    /// The trial grid, in index order.
    pub trials: Vec<S>,
}

impl<S> Campaign<S> {
    /// Creates an empty campaign.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Campaign {
            name: name.into(),
            seed,
            trials: Vec::new(),
        }
    }

    /// Appends a trial and returns its index.
    pub fn push_trial(&mut self, spec: S) -> usize {
        self.trials.push(spec);
        self.trials.len() - 1
    }

    /// Number of trials in the grid.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }
}

impl<S: Serialize> Campaign<S> {
    /// A stable fingerprint of the campaign identity: name, seed, and
    /// the serialised form of every trial spec. Stored in the journal
    /// header and checked on resume, so a journal can never silently be
    /// replayed against a different grid.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = fnv1a(0xcbf2_9ce4_8422_2325, self.name.as_bytes());
        hash = fnv1a(hash, &self.seed.to_le_bytes());
        hash = fnv1a(hash, &(self.trials.len() as u64).to_le_bytes());
        for spec in &self.trials {
            let json = serde_json::to_string(spec).unwrap_or_default();
            hash = fnv1a(hash, json.as_bytes());
        }
        hash
    }
}

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_tracks_identity() {
        let mut a: Campaign<u64> = Campaign::new("demo", 1);
        a.push_trial(10);
        a.push_trial(20);
        let mut same = Campaign::new("demo", 1);
        same.push_trial(10);
        same.push_trial(20);
        assert_eq!(a.fingerprint(), same.fingerprint());

        let mut renamed = same.clone();
        renamed.name = "other".into();
        assert_ne!(a.fingerprint(), renamed.fingerprint());

        let mut reseeded = same.clone();
        reseeded.seed = 2;
        assert_ne!(a.fingerprint(), reseeded.fingerprint());

        let mut reordered = Campaign::new("demo", 1);
        reordered.push_trial(20);
        reordered.push_trial(10);
        assert_ne!(a.fingerprint(), reordered.fingerprint());
    }

    #[test]
    fn push_returns_dense_indices() {
        let mut c: Campaign<u8> = Campaign::new("idx", 0);
        assert!(c.is_empty());
        assert_eq!(c.push_trial(5), 0);
        assert_eq!(c.push_trial(6), 1);
        assert_eq!(c.len(), 2);
    }
}
