//! The worker-pool executor: runs a campaign's trials in parallel with
//! bounded retries, journaling, and resume.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Value;
use xbar_obs::{Collector, Counters, TraceWriter, TrialObservations};

use crate::campaign::Campaign;
use crate::journal::{
    read_journal, JournalHeader, JournalWriter, TrialRecord, TrialStatus, JOURNAL_FORMAT_VERSION,
    JOURNAL_KIND,
};
use crate::progress::{CampaignMetrics, ProgressSink, TrialOutcome};
use crate::runner::{classify_failure, FailureClass, TrialContext, TrialRunner};

/// Errors from the campaign executor and its journal.
#[derive(Debug)]
pub enum RuntimeError {
    /// Filesystem failure while reading or writing the journal.
    Io(std::io::Error),
    /// JSON (de)serialisation failure.
    Serde(serde_json::Error),
    /// A semantic journal problem: corruption, or a resume against the
    /// wrong campaign.
    Journal(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Io(e) => write!(f, "io error: {e}"),
            RuntimeError::Serde(e) => write!(f, "serialisation error: {e}"),
            RuntimeError::Journal(msg) => write!(f, "journal error: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<std::io::Error> for RuntimeError {
    fn from(e: std::io::Error) -> Self {
        RuntimeError::Io(e)
    }
}

impl From<serde_json::Error> for RuntimeError {
    fn from(e: serde_json::Error) -> Self {
        RuntimeError::Serde(e)
    }
}

/// Executor tuning knobs.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Worker threads. Clamped to at least 1; results do not depend on
    /// this in any way (see the crate docs on determinism).
    pub threads: usize,
    /// How many times a failed trial is retried before being journaled
    /// as failed. `0` means one attempt total. Only
    /// [`FailureClass::Retryable`] failures are retried; a
    /// [`FailureClass::Permanent`] error (see
    /// [`crate::runner::PERMANENT_ERROR_PREFIX`]) always gets exactly one
    /// attempt.
    pub max_retries: u32,
    /// Per-trial wall-clock deadline. A running attempt is never aborted
    /// (trials are pure compute), but once a trial's elapsed time crosses
    /// the deadline no further retries are granted — the last error is
    /// journaled instead. `None` disables the deadline.
    pub trial_deadline: Option<Duration>,
}

impl ExecutorConfig {
    /// A config with `threads` workers, the default retry bound (1), and
    /// no per-trial deadline.
    pub fn with_threads(threads: usize) -> Self {
        ExecutorConfig {
            threads: threads.max(1),
            max_retries: 1,
            trial_deadline: None,
        }
    }
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExecutorConfig {
            threads,
            max_retries: 1,
            trial_deadline: None,
        }
    }
}

/// A trial that exhausted its retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialFailure {
    /// Trial index within the campaign grid.
    pub trial_index: usize,
    /// Attempts consumed.
    pub attempts: u32,
    /// The final failure message.
    pub error: String,
    /// How the executor classified the final error.
    pub class: FailureClass,
}

/// The result of running (or resuming) a campaign.
#[derive(Debug)]
pub struct CampaignReport<O> {
    /// Per-trial outputs, indexed by trial index. `None` exactly for the
    /// trials listed in `failures`.
    pub outputs: Vec<Option<O>>,
    /// Permanently failed trials, sorted by trial index.
    pub failures: Vec<TrialFailure>,
    /// Final counters (includes resumed trials as `skipped`).
    pub metrics: CampaignMetrics,
}

impl<O> CampaignReport<O> {
    /// Whether every trial produced an output.
    pub fn all_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// What a worker sends back for each finished trial.
struct Finished<O> {
    trial_index: usize,
    attempts: u32,
    wall: Duration,
    result: Result<O, String>,
    /// What the trial's final attempt recorded through `xbar-obs`
    /// (earlier, retried attempts are discarded with `reset_trial` so
    /// the deterministic counters describe exactly one clean run).
    observations: TrialObservations,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("trial panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("trial panicked: {s}")
    } else {
        "trial panicked".to_string()
    }
}

fn expected_header<S: serde::Serialize>(campaign: &Campaign<S>) -> JournalHeader {
    JournalHeader {
        kind: JOURNAL_KIND.to_string(),
        format_version: JOURNAL_FORMAT_VERSION,
        name: campaign.name.clone(),
        campaign_seed: campaign.seed,
        fingerprint: campaign.fingerprint(),
        total_trials: campaign.len(),
    }
}

/// Loads completed trials from an existing journal, after verifying the
/// header matches this campaign.
fn load_resume_state<S: serde::Serialize>(
    path: &Path,
    campaign: &Campaign<S>,
) -> Result<HashMap<usize, Value>, RuntimeError> {
    let (header, records) = read_journal(path)?;
    let expected = expected_header(campaign);
    if header != expected {
        return Err(RuntimeError::Journal(format!(
            "journal {} belongs to a different campaign: header {:?} vs expected {:?} \
             (delete the journal to start over)",
            path.display(),
            header,
            expected
        )));
    }
    let mut completed = HashMap::new();
    for record in records {
        if record.trial >= campaign.len() {
            return Err(RuntimeError::Journal(format!(
                "journal {}: trial index {} out of range ({} trials)",
                path.display(),
                record.trial,
                campaign.len()
            )));
        }
        if record.status == TrialStatus::Ok {
            if let Some(output) = record.output {
                // Last record wins if a trial somehow appears twice.
                completed.insert(record.trial, output);
            }
        }
    }
    Ok(completed)
}

/// Runs `campaign` on a worker pool and returns the full report.
///
/// * `journal_path`: if set, every finished trial is checkpointed there
///   as JSON Lines (see [`crate::journal`]).
/// * `resume`: if set (requires `journal_path`), trials already recorded
///   as completed in the journal are skipped and their outputs are
///   loaded back instead of re-run; new records are appended.
///
/// Outputs are bit-identical for any `config.threads` because each trial
/// draws randomness only from its own `(campaign_seed, trial_index)`
/// stream.
pub fn run_campaign<R: TrialRunner>(
    runner: &R,
    campaign: &Campaign<R::Spec>,
    config: &ExecutorConfig,
    journal_path: Option<&Path>,
    resume: bool,
    sink: &mut dyn ProgressSink,
) -> Result<CampaignReport<R::Output>, RuntimeError> {
    run_campaign_traced(runner, campaign, config, journal_path, resume, sink, None)
}

/// [`run_campaign`] with an optional JSONL trace.
///
/// Every trial executes under an `xbar-obs` scope, so oracle queries,
/// power probes, crossbar evaluations, and attack-stage spans recorded
/// by the lower layers are attributed to the trial that performed them.
/// If `trace_path` is set, the campaign writes an `xbar-obs` trace
/// there: a header line, one record per executed trial (in completion
/// order), and an aggregate end record. Counter content in the trace is
/// deterministic — bit-identical across `config.threads` — while the
/// `*_nanos` fields carry wall-clock timing (see the `xbar-obs` crate
/// docs for the contract).
pub fn run_campaign_traced<R: TrialRunner>(
    runner: &R,
    campaign: &Campaign<R::Spec>,
    config: &ExecutorConfig,
    journal_path: Option<&Path>,
    resume: bool,
    sink: &mut dyn ProgressSink,
    trace_path: Option<&Path>,
) -> Result<CampaignReport<R::Output>, RuntimeError> {
    let total = campaign.len();
    let start = Instant::now();

    let mut trace = match trace_path {
        Some(path) => {
            let mut writer = TraceWriter::create(path)?;
            writer.campaign_header(&campaign.name, campaign.seed, total)?;
            Some(writer)
        }
        None => None,
    };
    let mut trace_totals = TrialObservations::default();

    // Resume: harvest completed trials from the existing journal.
    let resumed: HashMap<usize, Value> = match (journal_path, resume) {
        (Some(path), true) if path.exists() => load_resume_state(path, campaign)?,
        (Some(_), _) => HashMap::new(),
        (None, true) => {
            return Err(RuntimeError::Journal(
                "resume requested but no journal path given".to_string(),
            ))
        }
        (None, false) => HashMap::new(),
    };

    let mut writer = match journal_path {
        Some(path) if resume && path.exists() => Some(JournalWriter::append(path)?),
        Some(path) => Some(JournalWriter::create(path, &expected_header(campaign))?),
        None => None,
    };

    let mut outputs: Vec<Option<R::Output>> = Vec::with_capacity(total);
    outputs.resize_with(total, || None);
    let mut metrics = CampaignMetrics {
        total,
        skipped: resumed.len(),
        ..CampaignMetrics::default()
    };
    for (trial_index, value) in resumed.iter() {
        let output = serde_json::from_value::<R::Output>(value.clone()).map_err(|e| {
            RuntimeError::Journal(format!(
                "journal output for trial {trial_index} no longer deserialises \
                 (output schema changed?): {e}"
            ))
        })?;
        outputs[*trial_index] = Some(output);
    }

    let pending: Vec<usize> = (0..total).filter(|i| !resumed.contains_key(i)).collect();
    let mut failures: Vec<TrialFailure> = Vec::new();

    if !pending.is_empty() {
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<Finished<R::Output>>();
        let worker_count = config.threads.max(1).min(pending.len());
        let max_attempts = config.max_retries.saturating_add(1);
        let trial_deadline = config.trial_deadline;
        // One deterministic registry shared by all workers; events are
        // keyed by trial index, so sharing is attribution-safe.
        let counters = Arc::new(Counters::new());

        // Shared by reference into the move closures below.
        let cursor = &cursor;
        let pending_ref = &pending;
        let counters_ref = &counters;

        std::thread::scope(|scope| -> Result<(), RuntimeError> {
            for _ in 0..worker_count {
                let tx = tx.clone();
                let collector: Arc<dyn Collector> = Arc::clone(counters_ref) as _;
                scope.spawn(move || {
                    loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        if k >= pending_ref.len() {
                            break;
                        }
                        let trial_index = pending_ref[k];
                        let spec = &campaign.trials[trial_index];
                        let trial_start = Instant::now();
                        let mut attempts = 0u32;
                        let result = loop {
                            attempts += 1;
                            let ctx = TrialContext {
                                trial_index,
                                campaign_seed: campaign.seed,
                                attempt: attempts,
                            };
                            // Retry hygiene: a failed attempt's partial
                            // observations must not leak into the next
                            // attempt's (deterministic) counters.
                            counters_ref.reset_trial(trial_index as u64);
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                xbar_obs::with_scope(
                                    Arc::clone(&collector),
                                    Some(trial_index as u64),
                                    || {
                                        let _span = xbar_obs::span(xbar_obs::names::SPAN_TRIAL);
                                        runner.run(spec, &ctx)
                                    },
                                )
                            }));
                            let flat = match outcome {
                                Ok(Ok(output)) => Ok(output),
                                Ok(Err(message)) => Err(message),
                                Err(payload) => Err(panic_message(payload)),
                            };
                            match flat {
                                Ok(output) => break Ok(output),
                                Err(message) => {
                                    // Permanent errors reproduce
                                    // deterministically: one attempt.
                                    // Retryable errors get the bounded
                                    // retry, unless the trial has already
                                    // blown its wall-clock deadline.
                                    let retryable = classify_failure(&message)
                                        == FailureClass::Retryable
                                        && attempts < max_attempts
                                        && trial_deadline.is_none_or(|d| trial_start.elapsed() < d);
                                    if retryable {
                                        continue;
                                    }
                                    break Err(message);
                                }
                            }
                        };
                        let finished = Finished {
                            trial_index,
                            attempts,
                            wall: trial_start.elapsed(),
                            result,
                            observations: counters_ref.take_trial(trial_index as u64),
                        };
                        // The receiver hangs up only on a journal write
                        // error; stop producing in that case.
                        if tx.send(finished).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);

            for finished in rx {
                metrics.elapsed = start.elapsed();
                let record = match &finished.result {
                    Ok(output) => TrialRecord {
                        trial: finished.trial_index,
                        status: TrialStatus::Ok,
                        attempts: finished.attempts,
                        output: Some(serde_json::to_value(output)?),
                        error: None,
                        failure_class: None,
                    },
                    Err(message) => TrialRecord {
                        trial: finished.trial_index,
                        status: TrialStatus::Failed,
                        attempts: finished.attempts,
                        output: None,
                        error: Some(message.clone()),
                        failure_class: Some(classify_failure(message)),
                    },
                };
                if let Some(writer) = writer.as_mut() {
                    writer.record(&record)?;
                }
                if let Some(trace) = trace.as_mut() {
                    trace.trial(
                        finished.trial_index,
                        finished.result.is_ok(),
                        finished.attempts,
                        finished.wall,
                        &finished.observations,
                    )?;
                }
                metrics.absorb_observations(&finished.observations);
                trace_totals.merge(&finished.observations);
                match finished.result {
                    Ok(output) => {
                        metrics.completed += 1;
                        if finished.attempts > 1 {
                            // Recovered after at least one retry: the
                            // trial succeeded but the hardware/run was
                            // degraded enough to need another attempt.
                            metrics.degraded += 1;
                        }
                        outputs[finished.trial_index] = Some(output);
                        sink.on_trial(
                            &TrialOutcome {
                                trial_index: finished.trial_index,
                                attempts: finished.attempts,
                                wall: finished.wall,
                                error: None,
                                observations: Some(&finished.observations),
                            },
                            &metrics,
                        );
                    }
                    Err(message) => {
                        metrics.failed += 1;
                        sink.on_trial(
                            &TrialOutcome {
                                trial_index: finished.trial_index,
                                attempts: finished.attempts,
                                wall: finished.wall,
                                error: Some(&message),
                                observations: Some(&finished.observations),
                            },
                            &metrics,
                        );
                        failures.push(TrialFailure {
                            trial_index: finished.trial_index,
                            attempts: finished.attempts,
                            class: classify_failure(&message),
                            error: message,
                        });
                    }
                }
            }
            Ok(())
        })?;
    }

    metrics.elapsed = start.elapsed();
    if let Some(trace) = trace.as_mut() {
        trace.end(
            metrics.completed,
            metrics.failed,
            metrics.skipped,
            metrics.elapsed,
            &trace_totals,
        )?;
    }
    sink.on_end(&metrics);
    failures.sort_by_key(|f| f.trial_index);
    Ok(CampaignReport {
        outputs,
        failures,
        metrics,
    })
}

/// A unique temp-file path for tests.
#[cfg(test)]
pub(crate) fn test_path(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "xbar_runtime_{}_{tag}_{n}.jsonl",
        std::process::id()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::NullSink;
    use rand::RngCore;
    use serde::{Deserialize, Serialize};
    use std::sync::atomic::AtomicU32;
    use std::sync::Mutex;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct DrawSpec {
        label: String,
        draws: usize,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct DrawOutput {
        label: String,
        values: Vec<u64>,
    }

    /// Draws `spec.draws` values from the trial RNG.
    struct DrawRunner;

    impl TrialRunner for DrawRunner {
        type Spec = DrawSpec;
        type Output = DrawOutput;

        fn run(&self, spec: &DrawSpec, ctx: &TrialContext) -> Result<DrawOutput, String> {
            let mut rng = ctx.rng();
            Ok(DrawOutput {
                label: spec.label.clone(),
                values: (0..spec.draws).map(|_| rng.next_u64()).collect(),
            })
        }
    }

    fn draw_campaign(n: usize) -> Campaign<DrawSpec> {
        let mut campaign = Campaign::new("draws", 1234);
        for i in 0..n {
            campaign.push_trial(DrawSpec {
                label: format!("trial-{i}"),
                draws: 3 + i % 4,
            });
        }
        campaign
    }

    #[test]
    fn outputs_identical_across_thread_counts() {
        let campaign = draw_campaign(17);
        let serial = run_campaign(
            &DrawRunner,
            &campaign,
            &ExecutorConfig::with_threads(1),
            None,
            false,
            &mut NullSink,
        )
        .unwrap();
        let parallel = run_campaign(
            &DrawRunner,
            &campaign,
            &ExecutorConfig::with_threads(4),
            None,
            false,
            &mut NullSink,
        )
        .unwrap();
        assert_eq!(serial.outputs, parallel.outputs);
        assert!(serial.all_ok() && parallel.all_ok());
        assert_eq!(parallel.metrics.completed, 17);
    }

    #[test]
    fn journals_identical_across_thread_counts_after_sorting() {
        let campaign = draw_campaign(11);
        let sorted_journal = |threads: usize| {
            let path = test_path("threads");
            run_campaign(
                &DrawRunner,
                &campaign,
                &ExecutorConfig::with_threads(threads),
                Some(&path),
                false,
                &mut NullSink,
            )
            .unwrap();
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::remove_file(&path).ok();
            let mut lines: Vec<&str> = text.lines().collect();
            // Keep the header first, sort records by their JSON text —
            // record lines start with {"trial":N, so textual order is
            // index order for equal-format lines.
            let header = lines.remove(0).to_string();
            lines.sort_unstable();
            format!("{header}\n{}", lines.join("\n"))
        };
        assert_eq!(sorted_journal(1), sorted_journal(4));
    }

    /// Fails (by error or panic) every trial whose index is odd, on
    /// every attempt.
    struct OddFailRunner;

    impl TrialRunner for OddFailRunner {
        type Spec = DrawSpec;
        type Output = DrawOutput;

        fn run(&self, spec: &DrawSpec, ctx: &TrialContext) -> Result<DrawOutput, String> {
            match ctx.trial_index % 4 {
                1 => Err(format!("odd trial {}", ctx.trial_index)),
                3 => panic!("odd trial {} panicked", ctx.trial_index),
                _ => DrawRunner.run(spec, ctx),
            }
        }
    }

    #[test]
    fn failures_are_isolated_and_journaled() {
        let campaign = draw_campaign(8);
        let path = test_path("failures");
        let report = run_campaign(
            &OddFailRunner,
            &campaign,
            &ExecutorConfig {
                threads: 2,
                max_retries: 1,
                trial_deadline: None,
            },
            Some(&path),
            false,
            &mut NullSink,
        )
        .unwrap();
        assert_eq!(report.metrics.completed, 4);
        assert_eq!(report.metrics.failed, 4);
        assert_eq!(
            report
                .failures
                .iter()
                .map(|f| f.trial_index)
                .collect::<Vec<_>>(),
            vec![1, 3, 5, 7]
        );
        // Retries were consumed.
        assert!(report.failures.iter().all(|f| f.attempts == 2));
        // Panic text is captured.
        assert!(
            report.failures[1].error.contains("panicked"),
            "{:?}",
            report.failures[1]
        );

        let (_, records) = read_journal(&path).unwrap();
        assert_eq!(records.len(), 8);
        assert_eq!(
            records
                .iter()
                .filter(|r| r.status == TrialStatus::Failed)
                .count(),
            4
        );
        std::fs::remove_file(&path).ok();
    }

    /// Counts attempts per trial and fails the first `fail_first`
    /// attempts of each.
    struct FlakyRunner {
        fail_first: u32,
        attempts_seen: Mutex<HashMap<usize, u32>>,
    }

    impl TrialRunner for FlakyRunner {
        type Spec = DrawSpec;
        type Output = DrawOutput;

        fn run(&self, spec: &DrawSpec, ctx: &TrialContext) -> Result<DrawOutput, String> {
            let mut seen = self.attempts_seen.lock().unwrap();
            let count = seen.entry(ctx.trial_index).or_insert(0);
            *count += 1;
            if *count <= self.fail_first {
                return Err(format!("flaky attempt {count}"));
            }
            drop(seen);
            DrawRunner.run(spec, ctx)
        }
    }

    #[test]
    fn retries_recover_flaky_trials_with_identical_outputs() {
        let campaign = draw_campaign(6);
        let flaky = FlakyRunner {
            fail_first: 1,
            attempts_seen: Mutex::new(HashMap::new()),
        };
        let report = run_campaign(
            &flaky,
            &campaign,
            &ExecutorConfig {
                threads: 3,
                max_retries: 2,
                trial_deadline: None,
            },
            None,
            false,
            &mut NullSink,
        )
        .unwrap();
        assert!(report.all_ok());
        // Every trial needed a retry, so all surface as degraded.
        assert_eq!(report.metrics.degraded, 6);
        // Retried trials produce exactly what a clean run produces.
        let clean = run_campaign(
            &DrawRunner,
            &campaign,
            &ExecutorConfig::with_threads(1),
            None,
            false,
            &mut NullSink,
        )
        .unwrap();
        assert_eq!(report.outputs, clean.outputs);
    }

    /// Fails trial 2 permanently on every attempt; everything else runs
    /// clean.
    struct PermanentFailRunner {
        runs: AtomicU32,
    }

    impl TrialRunner for PermanentFailRunner {
        type Spec = DrawSpec;
        type Output = DrawOutput;

        fn run(&self, spec: &DrawSpec, ctx: &TrialContext) -> Result<DrawOutput, String> {
            self.runs.fetch_add(1, Ordering::Relaxed);
            if ctx.trial_index == 2 {
                return Err(crate::runner::permanent_error("spec cell out of range"));
            }
            DrawRunner.run(spec, ctx)
        }
    }

    #[test]
    fn permanent_failures_get_one_attempt_and_do_not_abort_the_campaign() {
        let campaign = draw_campaign(5);
        let path = test_path("permanent");
        let runner = PermanentFailRunner {
            runs: AtomicU32::new(0),
        };
        let report = run_campaign(
            &runner,
            &campaign,
            &ExecutorConfig {
                threads: 2,
                max_retries: 3,
                trial_deadline: None,
            },
            Some(&path),
            false,
            &mut NullSink,
        )
        .unwrap();
        // The other four trials complete despite the permanent failure.
        assert_eq!(report.metrics.completed, 4);
        assert_eq!(report.metrics.failed, 1);
        assert_eq!(report.metrics.degraded, 0);
        assert_eq!(report.failures.len(), 1);
        let failure = &report.failures[0];
        assert_eq!(failure.trial_index, 2);
        assert_eq!(failure.class, FailureClass::Permanent);
        // No retries were burnt on a deterministic failure: 4 clean
        // trials + 1 permanent attempt.
        assert_eq!(failure.attempts, 1);
        assert_eq!(runner.runs.load(Ordering::Relaxed), 5);

        // The journal carries the structured failure record.
        let (_, records) = read_journal(&path).unwrap();
        let failed: Vec<_> = records
            .iter()
            .filter(|r| r.status == TrialStatus::Failed)
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].trial, 2);
        assert_eq!(failed[0].failure_class, Some(FailureClass::Permanent));
        assert!(
            failed[0]
                .error
                .as_deref()
                .unwrap()
                .starts_with("permanent:"),
            "{:?}",
            failed[0].error
        );
        std::fs::remove_file(&path).ok();
    }

    /// Always fails retryably, burning wall-clock time on each attempt.
    struct SlowFailRunner;

    impl TrialRunner for SlowFailRunner {
        type Spec = DrawSpec;
        type Output = DrawOutput;

        fn run(&self, _spec: &DrawSpec, ctx: &TrialContext) -> Result<DrawOutput, String> {
            std::thread::sleep(Duration::from_millis(20));
            Err(format!("transient wobble on attempt {}", ctx.attempt))
        }
    }

    #[test]
    fn trial_deadline_caps_retries_without_aborting_the_attempt() {
        let campaign = draw_campaign(1);
        let report = run_campaign(
            &SlowFailRunner,
            &campaign,
            &ExecutorConfig {
                threads: 1,
                max_retries: 1000,
                trial_deadline: Some(Duration::from_millis(1)),
            },
            None,
            false,
            &mut NullSink,
        )
        .unwrap();
        assert_eq!(report.metrics.failed, 1);
        let failure = &report.failures[0];
        // The first attempt alone exceeds the 1 ms deadline, so the
        // generous retry budget is never consumed.
        assert_eq!(failure.attempts, 1);
        assert_eq!(failure.class, FailureClass::Retryable);
    }

    /// Counts how many trials actually execute.
    struct CountingRunner {
        runs: AtomicU32,
    }

    impl TrialRunner for CountingRunner {
        type Spec = DrawSpec;
        type Output = DrawOutput;

        fn run(&self, spec: &DrawSpec, ctx: &TrialContext) -> Result<DrawOutput, String> {
            self.runs.fetch_add(1, Ordering::Relaxed);
            DrawRunner.run(spec, ctx)
        }
    }

    #[test]
    fn resume_skips_completed_trials_without_duplicates() {
        let campaign = draw_campaign(10);
        let path = test_path("resume");

        // First run: odd trials fail permanently (some via panic).
        run_campaign(
            &OddFailRunner,
            &campaign,
            &ExecutorConfig {
                threads: 2,
                max_retries: 0,
                trial_deadline: None,
            },
            Some(&path),
            false,
            &mut NullSink,
        )
        .unwrap();

        // Resume with a healthy runner: only the 5 unfinished trials run.
        let counting = CountingRunner {
            runs: AtomicU32::new(0),
        };
        let report = run_campaign(
            &counting,
            &campaign,
            &ExecutorConfig::with_threads(2),
            Some(&path),
            true,
            &mut NullSink,
        )
        .unwrap();
        assert_eq!(counting.runs.load(Ordering::Relaxed), 5);
        assert_eq!(report.metrics.skipped, 5);
        assert_eq!(report.metrics.completed, 5);
        assert!(report.all_ok());

        // Full outputs match a clean serial run.
        let clean = run_campaign(
            &DrawRunner,
            &campaign,
            &ExecutorConfig::with_threads(1),
            None,
            false,
            &mut NullSink,
        )
        .unwrap();
        assert_eq!(report.outputs, clean.outputs);

        // Exactly one Ok record per trial in the final journal.
        let (_, records) = read_journal(&path).unwrap();
        let mut ok_per_trial = HashMap::new();
        for r in records.iter().filter(|r| r.status == TrialStatus::Ok) {
            *ok_per_trial.entry(r.trial).or_insert(0u32) += 1;
        }
        assert_eq!(ok_per_trial.len(), 10);
        assert!(ok_per_trial.values().all(|&c| c == 1), "{ok_per_trial:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_survives_a_truncated_tail() {
        let campaign = draw_campaign(5);
        let path = test_path("kill");
        run_campaign(
            &DrawRunner,
            &campaign,
            &ExecutorConfig::with_threads(1),
            Some(&path),
            false,
            &mut NullSink,
        )
        .unwrap();
        // Chop the last record in half, as a kill mid-write would.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - 25;
        std::fs::write(&path, &text[..cut]).unwrap();

        let report = run_campaign(
            &DrawRunner,
            &campaign,
            &ExecutorConfig::with_threads(2),
            Some(&path),
            true,
            &mut NullSink,
        )
        .unwrap();
        assert!(report.all_ok());
        assert_eq!(report.metrics.skipped, 4);
        assert_eq!(report.metrics.completed, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_a_different_campaign() {
        let campaign = draw_campaign(4);
        let path = test_path("mismatch");
        run_campaign(
            &DrawRunner,
            &campaign,
            &ExecutorConfig::with_threads(1),
            Some(&path),
            false,
            &mut NullSink,
        )
        .unwrap();

        let other = draw_campaign(5);
        let err = run_campaign(
            &DrawRunner,
            &other,
            &ExecutorConfig::with_threads(1),
            Some(&path),
            true,
            &mut NullSink,
        )
        .unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_without_journal_path_is_an_error() {
        let campaign = draw_campaign(1);
        let err = run_campaign(
            &DrawRunner,
            &campaign,
            &ExecutorConfig::with_threads(1),
            None,
            true,
            &mut NullSink,
        )
        .unwrap_err();
        assert!(err.to_string().contains("resume"), "{err}");
    }

    #[test]
    fn empty_campaign_completes() {
        let campaign: Campaign<DrawSpec> = Campaign::new("empty", 0);
        let report = run_campaign(
            &DrawRunner,
            &campaign,
            &ExecutorConfig::default(),
            None,
            false,
            &mut NullSink,
        )
        .unwrap();
        assert!(report.outputs.is_empty());
        assert!(report.all_ok());
    }
}
