//! The trial journal: an append-only JSON Lines checkpoint file.
//!
//! Line 1 is a [`JournalHeader`] identifying the campaign (including its
//! [`fingerprint`](crate::Campaign::fingerprint)); every subsequent line
//! is one [`TrialRecord`]. Records are appended and flushed as trials
//! finish, in *completion* order — which under parallel execution is not
//! index order. Consumers that want a canonical form sort by trial
//! index; the content itself is deterministic (no timestamps).
//!
//! A process killed mid-write leaves at most one truncated final line;
//! [`read_journal`] tolerates exactly that (a malformed line anywhere
//! else is a hard error).

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use serde::{Deserialize, Serialize, Value};

use crate::executor::RuntimeError;
use crate::jsonl::{read_jsonl_records, JsonlAppender};

/// The `kind` tag expected in a journal header.
pub const JOURNAL_KIND: &str = "xbar-campaign-journal";

/// Current journal format version.
///
/// Version history: v1 had no `failure_class` field on [`TrialRecord`];
/// v2 added it so failed trials carry their
/// [`FailureClass`](crate::runner::FailureClass) into the journal.
pub const JOURNAL_FORMAT_VERSION: u32 = 2;

/// First line of a journal: identifies the campaign the records belong to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Always [`JOURNAL_KIND`].
    pub kind: String,
    /// Always [`JOURNAL_FORMAT_VERSION`].
    pub format_version: u32,
    /// Campaign name.
    pub name: String,
    /// Campaign seed.
    pub campaign_seed: u64,
    /// [`crate::Campaign::fingerprint`] of the grid this journal tracks.
    pub fingerprint: u64,
    /// Total number of trials in the grid.
    pub total_trials: usize,
}

/// Completion status of a journaled trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrialStatus {
    /// The trial produced an output.
    Ok,
    /// The trial exhausted its retries.
    Failed,
}

/// One journal line: the outcome of a single trial.
///
/// Deliberately contains no wall-clock data — the journal must be
/// byte-identical across runs and thread counts (after sorting by
/// `trial`); timing goes to the [`crate::progress::ProgressSink`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// Trial index within the campaign grid.
    pub trial: usize,
    /// Outcome.
    pub status: TrialStatus,
    /// Number of attempts consumed (1 = succeeded first try).
    pub attempts: u32,
    /// Serialised trial output (present iff `status == Ok`).
    pub output: Option<Value>,
    /// Failure message (present iff `status == Failed`).
    pub error: Option<String>,
    /// How the executor classified the failure (present iff
    /// `status == Failed`).
    pub failure_class: Option<crate::runner::FailureClass>,
}

/// Append-only journal writer: a [`JsonlAppender`] whose first line is
/// the campaign header. Each record is flushed to the OS as soon as it
/// is written, so a killed process loses at most the line being written
/// at that instant.
pub struct JournalWriter {
    out: JsonlAppender,
}

impl JournalWriter {
    /// Creates a fresh journal at `path` (truncating any existing file)
    /// and writes the header line.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Self, RuntimeError> {
        let mut out = JsonlAppender::create(path)?;
        out.write(header)?;
        Ok(JournalWriter { out })
    }

    /// Opens an existing journal at `path` for appending, repairing a
    /// torn tail first (see [`JsonlAppender::append`]): a complete
    /// record that merely lost its newline gets the newline back,
    /// anything else after the last newline is dropped.
    pub fn append(path: &Path) -> Result<Self, RuntimeError> {
        let out = JsonlAppender::append(path, |tail| {
            serde_json::from_str::<TrialRecord>(tail).is_ok()
        })?;
        Ok(JournalWriter { out })
    }

    /// Appends one trial record and flushes it.
    pub fn record(&mut self, record: &TrialRecord) -> Result<(), RuntimeError> {
        self.out.write(record)
    }
}

/// Reads a journal back: the header plus every well-formed trial record.
///
/// A malformed or truncated *final* line (the signature of a killed
/// writer) is dropped silently — including a line that isn't valid
/// UTF-8, which a torn multi-byte write can produce; a malformed line
/// anywhere else is corruption and fails with [`RuntimeError::Journal`].
pub fn read_journal(path: &Path) -> Result<(JournalHeader, Vec<TrialRecord>), RuntimeError> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    // Lines are read as raw bytes (not via `BufRead::lines`) so that a
    // torn, non-UTF-8 final line is tolerated instead of erroring.
    let mut buf: Vec<u8> = Vec::new();

    reader.read_until(b'\n', &mut buf)?;
    if buf.is_empty() {
        return Err(RuntimeError::Journal(format!(
            "journal {} is empty (no header)",
            path.display()
        )));
    }
    let header_line = std::str::from_utf8(&buf).map_err(|e| {
        RuntimeError::Journal(format!("journal {}: bad header: {e}", path.display()))
    })?;
    let header: JournalHeader = serde_json::from_str(header_line.trim()).map_err(|e| {
        RuntimeError::Journal(format!("journal {}: bad header: {e}", path.display()))
    })?;
    if header.kind != JOURNAL_KIND {
        return Err(RuntimeError::Journal(format!(
            "journal {}: kind is {:?}, expected {JOURNAL_KIND:?}",
            path.display(),
            header.kind
        )));
    }
    if header.format_version != JOURNAL_FORMAT_VERSION {
        return Err(RuntimeError::Journal(format!(
            "journal {}: format version {} unsupported (expected {JOURNAL_FORMAT_VERSION})",
            path.display(),
            header.format_version
        )));
    }

    let records = read_jsonl_records::<TrialRecord>(&mut reader, path, 2)?;
    Ok((header, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::test_path;
    use std::fs::OpenOptions;
    use std::io::Write;

    fn header() -> JournalHeader {
        JournalHeader {
            kind: JOURNAL_KIND.to_string(),
            format_version: JOURNAL_FORMAT_VERSION,
            name: "t".into(),
            campaign_seed: 5,
            fingerprint: 99,
            total_trials: 3,
        }
    }

    fn ok_record(trial: usize) -> TrialRecord {
        TrialRecord {
            trial,
            status: TrialStatus::Ok,
            attempts: 1,
            output: Some(Value::U64(trial as u64 * 10)),
            error: None,
            failure_class: None,
        }
    }

    #[test]
    fn roundtrip_header_and_records() {
        let path = test_path("journal_roundtrip");
        let mut writer = JournalWriter::create(&path, &header()).unwrap();
        writer.record(&ok_record(0)).unwrap();
        writer
            .record(&TrialRecord {
                trial: 1,
                status: TrialStatus::Failed,
                attempts: 3,
                output: None,
                error: Some("boom".into()),
                failure_class: Some(crate::runner::FailureClass::Retryable),
            })
            .unwrap();
        drop(writer);

        let (read_header, records) = read_journal(&path).unwrap();
        assert_eq!(read_header, header());
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], ok_record(0));
        assert_eq!(records[1].status, TrialStatus::Failed);
        assert_eq!(records[1].error.as_deref(), Some("boom"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let path = test_path("journal_truncated");
        let mut writer = JournalWriter::create(&path, &header()).unwrap();
        writer.record(&ok_record(0)).unwrap();
        drop(writer);
        // Simulate a kill mid-write: a half line with no newline.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"trial\":1,\"sta").unwrap();
        drop(file);

        let (_, records) = read_journal(&path).unwrap();
        assert_eq!(records, vec![ok_record(0)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interior_corruption_is_an_error() {
        let path = test_path("journal_corrupt");
        let mut writer = JournalWriter::create(&path, &header()).unwrap();
        writer.record(&ok_record(0)).unwrap();
        drop(writer);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"not json\n").unwrap();
        drop(file);
        let mut writer = JournalWriter::append(&path).unwrap();
        writer.record(&ok_record(2)).unwrap();
        drop(writer);

        let err = read_journal(&path).unwrap_err();
        assert!(err.to_string().contains("corrupt record"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_repairs_a_torn_tail_instead_of_merging_records() {
        let path = test_path("journal_torn_append");
        let mut writer = JournalWriter::create(&path, &header()).unwrap();
        writer.record(&ok_record(0)).unwrap();
        drop(writer);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"trial\":1,\"sta").unwrap();
        drop(file);

        // Appending after the torn fragment must not glue the new record
        // onto it: the fragment is dropped and the record starts clean.
        let mut writer = JournalWriter::append(&path).unwrap();
        writer.record(&ok_record(2)).unwrap();
        drop(writer);

        let (_, records) = read_journal(&path).unwrap();
        assert_eq!(records, vec![ok_record(0), ok_record(2)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_completes_a_record_that_lost_only_its_newline() {
        let path = test_path("journal_no_newline_append");
        let mut writer = JournalWriter::create(&path, &header()).unwrap();
        writer.record(&ok_record(0)).unwrap();
        drop(writer);
        // The full record bytes made it to disk, the trailing '\n' didn't.
        let record_1 = serde_json::to_string(&ok_record(1)).unwrap();
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(record_1.as_bytes()).unwrap();
        drop(file);

        let mut writer = JournalWriter::append(&path).unwrap();
        writer.record(&ok_record(2)).unwrap();
        drop(writer);

        // All three records survive, including the newline-less one.
        let (_, records) = read_journal(&path).unwrap();
        assert_eq!(records, vec![ok_record(0), ok_record(1), ok_record(2)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_utf8_final_line_is_tolerated_and_repaired() {
        let path = test_path("journal_non_utf8");
        let mut writer = JournalWriter::create(&path, &header()).unwrap();
        writer.record(&ok_record(0)).unwrap();
        drop(writer);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[0xff, 0xfe, b'g', b'a', b'r', b'b'])
            .unwrap();
        drop(file);

        // Read: invalid UTF-8 in the final line is a torn tail, not an error.
        let (_, records) = read_journal(&path).unwrap();
        assert_eq!(records, vec![ok_record(0)]);

        // Append: the garbage is dropped, not merged into.
        let mut writer = JournalWriter::append(&path).unwrap();
        writer.record(&ok_record(1)).unwrap();
        drop(writer);
        let (_, records) = read_journal(&path).unwrap();
        assert_eq!(records, vec![ok_record(0), ok_record(1)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_kind_rejected() {
        let path = test_path("journal_kind");
        let mut bad = header();
        bad.kind = "something-else".into();
        drop(JournalWriter::create(&path, &bad).unwrap());
        assert!(read_journal(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
