//! The trial journal: an append-only JSON Lines checkpoint file.
//!
//! Line 1 is a [`JournalHeader`] identifying the campaign (including its
//! [`fingerprint`](crate::Campaign::fingerprint)); every subsequent line
//! is one [`TrialRecord`]. Records are appended and flushed as trials
//! finish, in *completion* order — which under parallel execution is not
//! index order. Consumers that want a canonical form sort by trial
//! index; the content itself is deterministic (no timestamps).
//!
//! A process killed mid-write leaves at most one truncated final line;
//! [`read_journal`] tolerates exactly that (a malformed line anywhere
//! else is a hard error).

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use serde::{Deserialize, Serialize, Value};

use crate::executor::RuntimeError;

/// The `kind` tag expected in a journal header.
pub const JOURNAL_KIND: &str = "xbar-campaign-journal";

/// Current journal format version.
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// First line of a journal: identifies the campaign the records belong to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Always [`JOURNAL_KIND`].
    pub kind: String,
    /// Always [`JOURNAL_FORMAT_VERSION`].
    pub format_version: u32,
    /// Campaign name.
    pub name: String,
    /// Campaign seed.
    pub campaign_seed: u64,
    /// [`crate::Campaign::fingerprint`] of the grid this journal tracks.
    pub fingerprint: u64,
    /// Total number of trials in the grid.
    pub total_trials: usize,
}

/// Completion status of a journaled trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrialStatus {
    /// The trial produced an output.
    Ok,
    /// The trial exhausted its retries.
    Failed,
}

/// One journal line: the outcome of a single trial.
///
/// Deliberately contains no wall-clock data — the journal must be
/// byte-identical across runs and thread counts (after sorting by
/// `trial`); timing goes to the [`crate::progress::ProgressSink`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// Trial index within the campaign grid.
    pub trial: usize,
    /// Outcome.
    pub status: TrialStatus,
    /// Number of attempts consumed (1 = succeeded first try).
    pub attempts: u32,
    /// Serialised trial output (present iff `status == Ok`).
    pub output: Option<Value>,
    /// Failure message (present iff `status == Failed`).
    pub error: Option<String>,
}

/// Append-only journal writer. Each record is flushed to the OS as soon
/// as it is written, so a killed process loses at most the line being
/// written at that instant.
pub struct JournalWriter {
    out: BufWriter<File>,
}

impl JournalWriter {
    /// Creates a fresh journal at `path` (truncating any existing file)
    /// and writes the header line.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Self, RuntimeError> {
        let file = File::create(path)?;
        let mut writer = JournalWriter {
            out: BufWriter::new(file),
        };
        writer.write_line(&serde_json::to_string(header)?)?;
        Ok(writer)
    }

    /// Opens an existing journal at `path` for appending.
    pub fn append(path: &Path) -> Result<Self, RuntimeError> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(JournalWriter {
            out: BufWriter::new(file),
        })
    }

    /// Appends one trial record and flushes it.
    pub fn record(&mut self, record: &TrialRecord) -> Result<(), RuntimeError> {
        self.write_line(&serde_json::to_string(record)?)
    }

    fn write_line(&mut self, line: &str) -> Result<(), RuntimeError> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()?;
        Ok(())
    }
}

/// Reads a journal back: the header plus every well-formed trial record.
///
/// A malformed or truncated *final* line (the signature of a killed
/// writer) is dropped silently; a malformed line anywhere else is
/// corruption and fails with [`RuntimeError::Journal`].
pub fn read_journal(path: &Path) -> Result<(JournalHeader, Vec<TrialRecord>), RuntimeError> {
    let file = File::open(path)?;
    let mut lines = BufReader::new(file).lines();

    let header_line = match lines.next() {
        Some(line) => line?,
        None => {
            return Err(RuntimeError::Journal(format!(
                "journal {} is empty (no header)",
                path.display()
            )))
        }
    };
    let header: JournalHeader = serde_json::from_str(&header_line).map_err(|e| {
        RuntimeError::Journal(format!("journal {}: bad header: {e}", path.display()))
    })?;
    if header.kind != JOURNAL_KIND {
        return Err(RuntimeError::Journal(format!(
            "journal {}: kind is {:?}, expected {JOURNAL_KIND:?}",
            path.display(),
            header.kind
        )));
    }
    if header.format_version != JOURNAL_FORMAT_VERSION {
        return Err(RuntimeError::Journal(format!(
            "journal {}: format version {} unsupported (expected {JOURNAL_FORMAT_VERSION})",
            path.display(),
            header.format_version
        )));
    }

    let mut records: Vec<TrialRecord> = Vec::new();
    let mut pending_error: Option<String> = None;
    for (line_no, line) in lines.enumerate() {
        let line = line?;
        // A malformed line is only tolerable if nothing follows it.
        if let Some(err) = pending_error.take() {
            return Err(RuntimeError::Journal(err));
        }
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<TrialRecord>(&line) {
            Ok(record) => records.push(record),
            Err(e) => {
                pending_error = Some(format!(
                    "journal {}: corrupt record on line {}: {e}",
                    path.display(),
                    line_no + 2
                ));
            }
        }
    }
    Ok((header, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::test_path;

    fn header() -> JournalHeader {
        JournalHeader {
            kind: JOURNAL_KIND.to_string(),
            format_version: JOURNAL_FORMAT_VERSION,
            name: "t".into(),
            campaign_seed: 5,
            fingerprint: 99,
            total_trials: 3,
        }
    }

    fn ok_record(trial: usize) -> TrialRecord {
        TrialRecord {
            trial,
            status: TrialStatus::Ok,
            attempts: 1,
            output: Some(Value::U64(trial as u64 * 10)),
            error: None,
        }
    }

    #[test]
    fn roundtrip_header_and_records() {
        let path = test_path("journal_roundtrip");
        let mut writer = JournalWriter::create(&path, &header()).unwrap();
        writer.record(&ok_record(0)).unwrap();
        writer
            .record(&TrialRecord {
                trial: 1,
                status: TrialStatus::Failed,
                attempts: 3,
                output: None,
                error: Some("boom".into()),
            })
            .unwrap();
        drop(writer);

        let (read_header, records) = read_journal(&path).unwrap();
        assert_eq!(read_header, header());
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], ok_record(0));
        assert_eq!(records[1].status, TrialStatus::Failed);
        assert_eq!(records[1].error.as_deref(), Some("boom"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let path = test_path("journal_truncated");
        let mut writer = JournalWriter::create(&path, &header()).unwrap();
        writer.record(&ok_record(0)).unwrap();
        drop(writer);
        // Simulate a kill mid-write: a half line with no newline.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"trial\":1,\"sta").unwrap();
        drop(file);

        let (_, records) = read_journal(&path).unwrap();
        assert_eq!(records, vec![ok_record(0)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interior_corruption_is_an_error() {
        let path = test_path("journal_corrupt");
        let mut writer = JournalWriter::create(&path, &header()).unwrap();
        writer.record(&ok_record(0)).unwrap();
        drop(writer);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"not json\n").unwrap();
        drop(file);
        let mut writer = JournalWriter::append(&path).unwrap();
        writer.record(&ok_record(2)).unwrap();
        drop(writer);

        let err = read_journal(&path).unwrap_err();
        assert!(err.to_string().contains("corrupt record"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_kind_rejected() {
        let path = test_path("journal_kind");
        let mut bad = header();
        bad.kind = "something-else".into();
        drop(JournalWriter::create(&path, &bad).unwrap());
        assert!(read_journal(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
