//! Crash-tolerant append-only JSON Lines files.
//!
//! The campaign journal ([`crate::journal`]) and the serve session log
//! share one durability story: records are appended and flushed one per
//! line, a killed process leaves at most one torn final line, and both
//! the reader and the re-opening appender repair exactly that tail —
//! nothing else. This module is that story, generic over the record
//! type, so every JSONL consumer inherits the same tested semantics.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::executor::RuntimeError;

/// Append-only JSON Lines writer. Each record is flushed to the OS as
/// soon as it is written, so a killed process loses at most the line
/// being written at that instant.
pub struct JsonlAppender {
    out: BufWriter<File>,
}

impl JsonlAppender {
    /// Creates a fresh file at `path`, truncating any existing one.
    pub fn create(path: &Path) -> Result<Self, RuntimeError> {
        Ok(JsonlAppender {
            out: BufWriter::new(File::create(path)?),
        })
    }

    /// Opens an existing file at `path` for appending, repairing its
    /// tail first.
    ///
    /// A writer killed mid-record leaves a torn final line with no
    /// newline; blindly appending after it would merge the next record
    /// into that fragment and corrupt the *middle* of the file. So: if
    /// the bytes after the last newline satisfy `tail_is_complete_record`
    /// (the record made it to disk, only the newline didn't), the
    /// newline is restored; anything else after the last newline is
    /// truncated away.
    pub fn append(
        path: &Path,
        tail_is_complete_record: impl Fn(&str) -> bool,
    ) -> Result<Self, RuntimeError> {
        let bytes = std::fs::read(path)?;
        let mut file = OpenOptions::new().write(true).open(path)?;
        let line_start = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
        let tail = &bytes[line_start..];
        let tail_complete = std::str::from_utf8(tail)
            .ok()
            .is_some_and(&tail_is_complete_record);
        if tail.is_empty() {
            file.seek(SeekFrom::End(0))?;
        } else if tail_complete {
            // The record bytes made it to disk but the newline didn't.
            file.seek(SeekFrom::End(0))?;
            file.write_all(b"\n")?;
        } else {
            // A torn fragment (or trailing garbage): drop it so the next
            // record starts on a fresh line.
            file.set_len(line_start as u64)?;
            file.seek(SeekFrom::Start(line_start as u64))?;
        }
        Ok(JsonlAppender {
            out: BufWriter::new(file),
        })
    }

    /// Serialises one record, appends it, and flushes.
    pub fn write<T: Serialize>(&mut self, record: &T) -> Result<(), RuntimeError> {
        self.write_line(&serde_json::to_string(record)?)
    }

    /// Appends one pre-serialised line and flushes.
    pub fn write_line(&mut self, line: &str) -> Result<(), RuntimeError> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()?;
        Ok(())
    }
}

/// Reads every record from an already-positioned reader, tolerating a
/// malformed or truncated *final* line (the signature of a killed
/// writer) — including one that isn't valid UTF-8, which a torn
/// multi-byte write can produce. A malformed line anywhere else is
/// corruption and fails with [`RuntimeError::Journal`]. Blank lines are
/// skipped. `first_line_no` is the 1-based number of the next line, for
/// error messages.
pub fn read_jsonl_records<T: Deserialize>(
    reader: &mut impl BufRead,
    path: &Path,
    first_line_no: usize,
) -> Result<Vec<T>, RuntimeError> {
    let mut records: Vec<T> = Vec::new();
    let mut pending_error: Option<String> = None;
    let mut line_no = first_line_no;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        if reader.read_until(b'\n', &mut buf)? == 0 {
            break;
        }
        // A malformed line is only tolerable if nothing follows it.
        if let Some(err) = pending_error.take() {
            return Err(RuntimeError::Journal(err));
        }
        let parsed = std::str::from_utf8(&buf)
            .map_err(|e| format!("invalid utf-8: {e}"))
            .and_then(|line| {
                let line = line.trim();
                if line.is_empty() {
                    return Ok(None);
                }
                serde_json::from_str::<T>(line)
                    .map(Some)
                    .map_err(|e| e.to_string())
            });
        match parsed {
            Ok(None) => {}
            Ok(Some(record)) => records.push(record),
            Err(e) => {
                pending_error = Some(format!(
                    "journal {}: corrupt record on line {line_no}: {e}",
                    path.display(),
                ));
            }
        }
        line_no += 1;
    }
    Ok(records)
}

/// Reads a headerless JSON Lines file of `T` records with the tolerant
/// tail semantics of [`read_jsonl_records`].
pub fn read_jsonl<T: Deserialize>(path: &Path) -> Result<Vec<T>, RuntimeError> {
    let mut reader = BufReader::new(File::open(path)?);
    read_jsonl_records(&mut reader, path, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::test_path;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Row {
        k: u64,
        v: String,
    }

    fn row(k: u64) -> Row {
        Row {
            k,
            v: format!("row-{k}"),
        }
    }

    #[test]
    fn roundtrip_and_tolerant_tail() {
        let path = test_path("jsonl_roundtrip");
        let mut w = JsonlAppender::create(&path).unwrap();
        w.write(&row(0)).unwrap();
        w.write(&row(1)).unwrap();
        drop(w);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"k\":2,\"v").unwrap();
        drop(file);

        let rows: Vec<Row> = read_jsonl(&path).unwrap();
        assert_eq!(rows, vec![row(0), row(1)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_repairs_torn_tail_and_restores_lost_newline() {
        let path = test_path("jsonl_append_repair");
        let is_row = |s: &str| serde_json::from_str::<Row>(s).is_ok();
        let mut w = JsonlAppender::create(&path).unwrap();
        w.write(&row(0)).unwrap();
        drop(w);

        // Complete record, missing only its newline: kept.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(serde_json::to_string(&row(1)).unwrap().as_bytes())
            .unwrap();
        drop(file);
        let mut w = JsonlAppender::append(&path, is_row).unwrap();
        w.write(&row(2)).unwrap();
        drop(w);
        assert_eq!(
            read_jsonl::<Row>(&path).unwrap(),
            vec![row(0), row(1), row(2)]
        );

        // Torn fragment: dropped, not merged into.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[0xff, 0xfe, b'x']).unwrap();
        drop(file);
        let mut w = JsonlAppender::append(&path, is_row).unwrap();
        w.write(&row(3)).unwrap();
        drop(w);
        assert_eq!(
            read_jsonl::<Row>(&path).unwrap(),
            vec![row(0), row(1), row(2), row(3)]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interior_corruption_is_an_error() {
        let path = test_path("jsonl_interior");
        let mut w = JsonlAppender::create(&path).unwrap();
        w.write(&row(0)).unwrap();
        w.write_line("not json").unwrap();
        w.write(&row(1)).unwrap();
        drop(w);
        let err = read_jsonl::<Row>(&path).unwrap_err();
        assert!(err.to_string().contains("corrupt record"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
