//! # xbar-runtime
//!
//! A deterministic parallel campaign runner for the experiment harness:
//! a *campaign* is a grid of independent trials (dataset × oracle
//! configuration × attack method × strength × seed), and the runtime
//! executes it on a worker pool with checkpointing, bounded retries, and
//! progress metrics.
//!
//! Design invariants:
//!
//! * **Determinism.** Every trial draws randomness only from
//!   [`TrialContext::rng`], a ChaCha8 stream derived from
//!   `(campaign_seed, trial_index)`. Because the stream depends on the
//!   trial's position in the grid and on nothing else, results are
//!   bit-identical regardless of thread count or scheduling order.
//! * **Deterministic journal.** The trial journal (JSON Lines) records
//!   only deterministic content — trial index, status, attempts, and the
//!   serialised output. Wall-clock timing is reported through the
//!   [`progress::ProgressSink`] instead, so two runs of the same
//!   campaign produce byte-identical journals once sorted by trial
//!   index.
//! * **Failure isolation.** A failing (or panicking) trial is retried up
//!   to a bound and then journaled as failed; it never aborts the
//!   campaign. Failures are classified: an error prefixed with
//!   [`runner::PERMANENT_ERROR_PREFIX`] is deterministic (bad spec,
//!   shape error) and gets exactly one attempt, everything else is
//!   presumed transient and retried — optionally under a per-trial
//!   wall-clock deadline ([`ExecutorConfig::trial_deadline`]). Trials
//!   that recover after a retry are surfaced as
//!   [`CampaignMetrics::degraded`].
//! * **Resumability.** The journal doubles as a checkpoint: re-running
//!   with resume enabled skips every trial already recorded as completed,
//!   after verifying the journal header's campaign fingerprint. A
//!   truncated final line (from a killed run) is tolerated.
//!
//! ```
//! use xbar_runtime::{
//!     run_campaign, Campaign, ExecutorConfig, NullSink, TrialContext, TrialRunner,
//! };
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Serialize, Deserialize)]
//! struct Square {
//!     x: u64,
//! }
//!
//! #[derive(Serialize, Deserialize)]
//! struct Squared {
//!     y: u64,
//! }
//!
//! struct Runner;
//!
//! impl TrialRunner for Runner {
//!     type Spec = Square;
//!     type Output = Squared;
//!
//!     fn run(&self, spec: &Square, _ctx: &TrialContext) -> Result<Squared, String> {
//!         Ok(Squared { y: spec.x * spec.x })
//!     }
//! }
//!
//! let mut campaign = Campaign::new("squares", 7);
//! for x in 0..4 {
//!     campaign.push_trial(Square { x });
//! }
//! let report = run_campaign(
//!     &Runner,
//!     &campaign,
//!     &ExecutorConfig::with_threads(2),
//!     None,
//!     false,
//!     &mut NullSink,
//! )
//! .unwrap();
//! assert_eq!(report.outputs[3].as_ref().unwrap().y, 9);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod campaign;
pub mod executor;
pub mod journal;
pub mod jsonl;
pub mod progress;
pub mod runner;

pub use campaign::Campaign;
pub use executor::{
    run_campaign, run_campaign_traced, CampaignReport, ExecutorConfig, RuntimeError, TrialFailure,
};
pub use journal::{JournalHeader, TrialRecord, TrialStatus};
pub use jsonl::{read_jsonl, JsonlAppender};
pub use progress::{
    CampaignMetrics, JsonlReporter, NullSink, ProgressSink, StderrReporter, TrialOutcome,
};
pub use runner::{
    classify_failure, permanent_error, FailureClass, TrialContext, TrialRunner,
    PERMANENT_ERROR_PREFIX,
};
