//! Observability: progress events, counters, and the stderr reporter.
//!
//! Everything time-related lives here, *not* in the journal: the journal
//! must stay deterministic, while progress reporting is free to talk
//! about wall clocks and throughput.

use std::time::Duration;

/// Counters describing a campaign run so far.
#[derive(Debug, Clone, Default)]
pub struct CampaignMetrics {
    /// Total trials in the grid.
    pub total: usize,
    /// Trials skipped because a resumed journal already had them.
    pub skipped: usize,
    /// Trials completed successfully in this run.
    pub completed: usize,
    /// Trials that exhausted their retries in this run.
    pub failed: usize,
    /// Wall-clock time since the executor started.
    pub elapsed: Duration,
}

impl CampaignMetrics {
    /// Trials finished in this run (completed + failed).
    pub fn finished(&self) -> usize {
        self.completed + self.failed
    }

    /// Trials still outstanding.
    pub fn remaining(&self) -> usize {
        self.total
            .saturating_sub(self.skipped)
            .saturating_sub(self.finished())
    }

    /// Completed-or-failed trials per second of elapsed wall time, for
    /// this run only (resumed trials don't count).
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.finished() as f64 / secs
        } else {
            0.0
        }
    }
}

/// The outcome of one finished trial, as seen by a progress sink.
#[derive(Debug, Clone)]
pub struct TrialOutcome<'a> {
    /// Trial index within the campaign grid.
    pub trial_index: usize,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Wall-clock time spent across all attempts of this trial.
    pub wall: Duration,
    /// The failure message, if the trial failed permanently.
    pub error: Option<&'a str>,
}

/// Receives progress events from the executor.
///
/// Called from the executor's coordinating thread only, in trial
/// *completion* order (not index order).
pub trait ProgressSink {
    /// A trial finished (successfully or not).
    fn on_trial(&mut self, outcome: &TrialOutcome<'_>, metrics: &CampaignMetrics);

    /// The campaign finished.
    fn on_end(&mut self, metrics: &CampaignMetrics);
}

/// A sink that ignores everything.
pub struct NullSink;

impl ProgressSink for NullSink {
    fn on_trial(&mut self, _outcome: &TrialOutcome<'_>, _metrics: &CampaignMetrics) {}

    fn on_end(&mut self, _metrics: &CampaignMetrics) {}
}

/// Prints one progress line per `every` finished trials (and always on
/// failures and at the end) to stderr.
pub struct StderrReporter {
    label: String,
    every: usize,
}

impl StderrReporter {
    /// A reporter labelled `label`, printing every `every` trials
    /// (`every` is clamped to at least 1).
    pub fn new(label: impl Into<String>, every: usize) -> Self {
        StderrReporter {
            label: label.into(),
            every: every.max(1),
        }
    }
}

impl ProgressSink for StderrReporter {
    fn on_trial(&mut self, outcome: &TrialOutcome<'_>, metrics: &CampaignMetrics) {
        if let Some(error) = outcome.error {
            eprintln!(
                "[{}] trial {} FAILED after {} attempt(s): {error}",
                self.label, outcome.trial_index, outcome.attempts
            );
        }
        let finished = metrics.finished();
        if outcome.error.is_some()
            || finished.is_multiple_of(self.every)
            || metrics.remaining() == 0
        {
            eprintln!(
                "[{}] {}/{} done ({} failed, {} resumed), {:.2} trials/s, \
                 last: trial {} in {:.2}s",
                self.label,
                finished,
                metrics.total - metrics.skipped,
                metrics.failed,
                metrics.skipped,
                metrics.throughput(),
                outcome.trial_index,
                outcome.wall.as_secs_f64(),
            );
        }
    }

    fn on_end(&mut self, metrics: &CampaignMetrics) {
        eprintln!(
            "[{}] campaign finished: {} completed, {} failed, {} resumed, \
             {:.2}s elapsed ({:.2} trials/s)",
            self.label,
            metrics.completed,
            metrics.failed,
            metrics.skipped,
            metrics.elapsed.as_secs_f64(),
            metrics.throughput(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_arithmetic() {
        let metrics = CampaignMetrics {
            total: 10,
            skipped: 2,
            completed: 3,
            failed: 1,
            elapsed: Duration::from_secs(2),
        };
        assert_eq!(metrics.finished(), 4);
        assert_eq!(metrics.remaining(), 4);
        assert!((metrics.throughput() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_elapsed_throughput_is_zero() {
        let metrics = CampaignMetrics::default();
        assert_eq!(metrics.throughput(), 0.0);
    }
}
