//! Observability: progress events, counters, and the stderr reporter.
//!
//! Everything time-related lives here, *not* in the journal: the journal
//! must stay deterministic, while progress reporting is free to talk
//! about wall clocks and throughput.

use std::io::Write;
use std::time::Duration;

use xbar_obs::json::JsonValue;
use xbar_obs::TrialObservations;

/// Counters describing a campaign run so far.
#[derive(Debug, Clone, Default)]
pub struct CampaignMetrics {
    /// Total trials in the grid.
    pub total: usize,
    /// Trials skipped because a resumed journal already had them.
    pub skipped: usize,
    /// Trials completed successfully in this run.
    pub completed: usize,
    /// Trials that exhausted their retries in this run.
    pub failed: usize,
    /// Trials that completed only after at least one retry — the
    /// campaign's graceful-degradation signal: work got done, but the
    /// run needed extra attempts to do it.
    pub degraded: usize,
    /// Oracle queries consumed across all trials finished in this run
    /// (the [`xbar_obs::names::ORACLE_QUERY`] counter, summed).
    pub oracle_queries: u64,
    /// Power-probe measurements taken across all trials finished in this
    /// run (the [`xbar_obs::names::PROBE_MEASUREMENT`] counter, summed).
    pub probe_measurements: u64,
    /// Batched MVM evaluations issued across all trials finished in this
    /// run (the [`xbar_obs::names::XBAR_MVM_BATCH`] counter, summed).
    pub mvm_batches: u64,
    /// Wall-clock time since the executor started.
    pub elapsed: Duration,
}

impl CampaignMetrics {
    /// Trials finished in this run (completed + failed).
    pub fn finished(&self) -> usize {
        self.completed + self.failed
    }

    /// Trials still outstanding.
    pub fn remaining(&self) -> usize {
        self.total
            .saturating_sub(self.skipped)
            .saturating_sub(self.finished())
    }

    /// Completed-or-failed trials per second of elapsed wall time, for
    /// this run only (resumed trials don't count).
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.finished() as f64 / secs
        } else {
            0.0
        }
    }

    /// Folds one finished trial's observations into the cumulative
    /// query/power totals.
    pub fn absorb_observations(&mut self, observations: &TrialObservations) {
        self.oracle_queries += observations.counter(xbar_obs::names::ORACLE_QUERY);
        self.probe_measurements += observations.counter(xbar_obs::names::PROBE_MEASUREMENT);
        self.mvm_batches += observations.counter(xbar_obs::names::XBAR_MVM_BATCH);
    }
}

/// The outcome of one finished trial, as seen by a progress sink.
#[derive(Debug, Clone)]
pub struct TrialOutcome<'a> {
    /// Trial index within the campaign grid.
    pub trial_index: usize,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Wall-clock time spent across all attempts of this trial.
    pub wall: Duration,
    /// The failure message, if the trial failed permanently.
    pub error: Option<&'a str>,
    /// What the trial's final attempt recorded through `xbar-obs`
    /// (`None` when the executor ran without a collector).
    pub observations: Option<&'a TrialObservations>,
}

/// Receives progress events from the executor.
///
/// Called from the executor's coordinating thread only, in trial
/// *completion* order (not index order).
pub trait ProgressSink {
    /// A trial finished (successfully or not).
    fn on_trial(&mut self, outcome: &TrialOutcome<'_>, metrics: &CampaignMetrics);

    /// The campaign finished.
    fn on_end(&mut self, metrics: &CampaignMetrics);
}

/// A sink that ignores everything.
pub struct NullSink;

impl ProgressSink for NullSink {
    fn on_trial(&mut self, _outcome: &TrialOutcome<'_>, _metrics: &CampaignMetrics) {}

    fn on_end(&mut self, _metrics: &CampaignMetrics) {}
}

/// Prints one progress line per `every` finished trials (and always on
/// failures and at the end) to stderr.
pub struct StderrReporter {
    label: String,
    every: usize,
}

impl StderrReporter {
    /// A reporter labelled `label`, printing every `every` trials
    /// (`every` is clamped to at least 1).
    pub fn new(label: impl Into<String>, every: usize) -> Self {
        StderrReporter {
            label: label.into(),
            every: every.max(1),
        }
    }
}

impl ProgressSink for StderrReporter {
    fn on_trial(&mut self, outcome: &TrialOutcome<'_>, metrics: &CampaignMetrics) {
        // Assemble everything this event prints and emit it with a
        // single eprintln!, so interleaved workers' lines don't tear.
        let mut lines: Vec<String> = Vec::new();
        if let Some(error) = outcome.error {
            lines.push(format!(
                "[{}] trial {} FAILED after {} attempt(s): {error}",
                self.label, outcome.trial_index, outcome.attempts
            ));
        }
        let finished = metrics.finished();
        if outcome.error.is_some()
            || finished.is_multiple_of(self.every)
            || metrics.remaining() == 0
        {
            lines.push(format!(
                "[{}] {}/{} done ({} failed, {} resumed), {:.2} trials/s, \
                 last: trial {} in {:.2}s",
                self.label,
                finished,
                metrics.total.saturating_sub(metrics.skipped),
                metrics.failed,
                metrics.skipped,
                metrics.throughput(),
                outcome.trial_index,
                outcome.wall.as_secs_f64(),
            ));
        }
        if !lines.is_empty() {
            eprintln!("{}", lines.join("\n"));
        }
    }

    fn on_end(&mut self, metrics: &CampaignMetrics) {
        eprintln!(
            "[{}] campaign finished: {} completed ({} degraded), {} failed, \
             {} resumed, {} oracle queries, {} probe measurements, \
             {} mvm batches, {:.2}s elapsed ({:.2} trials/s)",
            self.label,
            metrics.completed,
            metrics.degraded,
            metrics.failed,
            metrics.skipped,
            metrics.oracle_queries,
            metrics.probe_measurements,
            metrics.mvm_batches,
            metrics.elapsed.as_secs_f64(),
            metrics.throughput(),
        );
    }
}

/// Emits progress as JSON Lines (one object per event) to an arbitrary
/// writer — `xbar campaign --progress json` uses stderr.
///
/// Events use the `xbar-obs` JSON encoder and look like:
///
/// ```json
/// {"event":"trial","campaign":"fig4","trial":3,"attempts":1,
///  "wall_nanos":1200,"finished":4,"total":16,"failed":0,"skipped":0,
///  "oracle_queries":400,"probe_measurements":32,"mvm_batches":12}
/// {"event":"end","campaign":"fig4","completed":16,"degraded":0,
///  "failed":0,"skipped":0,"oracle_queries":1600,
///  "probe_measurements":128,"mvm_batches":48,"elapsed_nanos":52000000}
/// ```
///
/// Like [`StderrReporter`], trial events are throttled to every `every`
/// finished trials plus all failures; the end event always fires.
pub struct JsonlReporter<W: Write> {
    label: String,
    every: usize,
    out: W,
}

impl JsonlReporter<std::io::Stderr> {
    /// A stderr-backed reporter labelled `label`, emitting a trial event
    /// every `every` trials (clamped to at least 1).
    pub fn stderr(label: impl Into<String>, every: usize) -> Self {
        JsonlReporter::new(label, every, std::io::stderr())
    }
}

impl<W: Write> JsonlReporter<W> {
    /// A reporter writing JSON lines to `out`.
    pub fn new(label: impl Into<String>, every: usize, out: W) -> Self {
        JsonlReporter {
            label: label.into(),
            every: every.max(1),
            out,
        }
    }

    fn emit(&mut self, record: &JsonValue) {
        // Progress is advisory: swallow write errors rather than
        // aborting the campaign over a closed stderr.
        let _ = writeln!(self.out, "{}", record.render());
        let _ = self.out.flush();
    }
}

fn nanos_u64(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

impl<W: Write> ProgressSink for JsonlReporter<W> {
    fn on_trial(&mut self, outcome: &TrialOutcome<'_>, metrics: &CampaignMetrics) {
        let finished = metrics.finished();
        if outcome.error.is_none()
            && !finished.is_multiple_of(self.every)
            && metrics.remaining() != 0
        {
            return;
        }
        let mut record = JsonValue::object();
        record
            .push("event", "trial")
            .push("campaign", self.label.as_str())
            .push("trial", outcome.trial_index)
            .push("attempts", outcome.attempts)
            .push("wall_nanos", nanos_u64(outcome.wall))
            .push("finished", finished)
            .push("total", metrics.total)
            .push("failed", metrics.failed)
            .push("skipped", metrics.skipped)
            .push("oracle_queries", metrics.oracle_queries)
            .push("probe_measurements", metrics.probe_measurements)
            .push("mvm_batches", metrics.mvm_batches);
        if let Some(error) = outcome.error {
            record.push("error", error);
        }
        self.emit(&record);
    }

    fn on_end(&mut self, metrics: &CampaignMetrics) {
        let mut record = JsonValue::object();
        record
            .push("event", "end")
            .push("campaign", self.label.as_str())
            .push("completed", metrics.completed)
            .push("degraded", metrics.degraded)
            .push("failed", metrics.failed)
            .push("skipped", metrics.skipped)
            .push("oracle_queries", metrics.oracle_queries)
            .push("probe_measurements", metrics.probe_measurements)
            .push("mvm_batches", metrics.mvm_batches)
            .push("elapsed_nanos", nanos_u64(metrics.elapsed));
        self.emit(&record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_obs::Collector;

    #[test]
    fn metrics_arithmetic() {
        let metrics = CampaignMetrics {
            total: 10,
            skipped: 2,
            completed: 3,
            failed: 1,
            elapsed: Duration::from_secs(2),
            ..CampaignMetrics::default()
        };
        assert_eq!(metrics.finished(), 4);
        assert_eq!(metrics.remaining(), 4);
        assert!((metrics.throughput() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_elapsed_throughput_is_zero() {
        let metrics = CampaignMetrics::default();
        assert_eq!(metrics.throughput(), 0.0);
    }

    #[test]
    fn remaining_survives_inconsistent_counts() {
        // A journal with more resumed trials than the grid has slots
        // must not underflow.
        let metrics = CampaignMetrics {
            total: 3,
            skipped: 5,
            ..CampaignMetrics::default()
        };
        assert_eq!(metrics.remaining(), 0);
    }

    #[test]
    fn absorb_observations_sums_query_and_probe_counters() {
        let counters = xbar_obs::Counters::new();
        counters.counter_add(Some(0), xbar_obs::names::ORACLE_QUERY, 25);
        counters.counter_add(Some(0), xbar_obs::names::PROBE_MEASUREMENT, 4);
        counters.counter_add(Some(0), xbar_obs::names::XBAR_MVM_BATCH, 3);
        counters.counter_add(Some(0), "something.else", 7);
        let obs = counters.take_trial(0);

        let mut metrics = CampaignMetrics::default();
        metrics.absorb_observations(&obs);
        metrics.absorb_observations(&obs);
        assert_eq!(metrics.oracle_queries, 50);
        assert_eq!(metrics.probe_measurements, 8);
        assert_eq!(metrics.mvm_batches, 6);
    }

    #[test]
    fn jsonl_reporter_throttles_and_always_reports_failures_and_end() {
        let mut buffer: Vec<u8> = Vec::new();
        {
            let mut sink = JsonlReporter::new("t", 2, &mut buffer);
            let mut metrics = CampaignMetrics {
                total: 4,
                ..CampaignMetrics::default()
            };
            let outcome = |trial_index, error| TrialOutcome {
                trial_index,
                attempts: 1,
                wall: Duration::from_millis(1),
                error,
                observations: None,
            };
            metrics.completed = 1;
            sink.on_trial(&outcome(0, None), &metrics); // 1 finished: throttled
            metrics.completed = 2;
            sink.on_trial(&outcome(1, None), &metrics); // 2 finished: emitted
            metrics.failed = 1;
            sink.on_trial(&outcome(2, Some("boom")), &metrics); // failure: emitted
            metrics.completed = 3;
            sink.on_trial(&outcome(3, None), &metrics); // last: emitted
            sink.on_end(&metrics);
        }
        let text = String::from_utf8(buffer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[0].contains("\"event\":\"trial\""));
        assert!(lines[0].contains("\"trial\":1"));
        assert!(lines[1].contains("\"error\":\"boom\""));
        assert!(lines[2].contains("\"trial\":3"));
        assert!(lines[3].contains("\"event\":\"end\""));
        assert!(lines[3].contains("\"completed\":3"));
    }
}
