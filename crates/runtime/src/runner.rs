//! The trial abstraction: what a campaign executes.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::fmt::Display;

/// Error-message prefix that marks a trial failure as permanent.
///
/// Runners signal "retrying cannot help" (bad spec, shape mismatch,
/// out-of-range grid cell) by prefixing their error string with this
/// marker — most conveniently through [`permanent_error`]. The executor
/// gives such failures exactly one attempt; everything else (panics,
/// plain `Err` strings) is presumed transient and retried up to the
/// configured bound.
pub const PERMANENT_ERROR_PREFIX: &str = "permanent:";

/// How the executor should treat a trial failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureClass {
    /// Plausibly transient (fault storm, budget race, panic): worth a
    /// bounded retry.
    Retryable,
    /// Deterministic (bad spec, shape error): retrying reproduces the
    /// same failure, so the executor journals it after one attempt.
    Permanent,
}

/// Classifies a trial error message by the [`PERMANENT_ERROR_PREFIX`]
/// convention. Unmarked messages — including panic payloads — default to
/// [`FailureClass::Retryable`].
pub fn classify_failure(message: &str) -> FailureClass {
    if message.trim_start().starts_with(PERMANENT_ERROR_PREFIX) {
        FailureClass::Permanent
    } else {
        FailureClass::Retryable
    }
}

/// Builds a permanent-classified error message: `"permanent: {msg}"`.
pub fn permanent_error(msg: impl Display) -> String {
    format!("{PERMANENT_ERROR_PREFIX} {msg}")
}

/// Per-trial execution context handed to [`TrialRunner::run`].
///
/// The context is the *only* sanctioned source of randomness inside a
/// trial: [`TrialContext::rng`] derives an independent ChaCha8 stream
/// from `(campaign_seed, trial_index)`, so a trial's draws depend on its
/// position in the campaign grid and on nothing else — in particular not
/// on which worker thread runs it, or in what order.
#[derive(Debug, Clone)]
pub struct TrialContext {
    /// This trial's index within the campaign grid (dense, 0-based).
    pub trial_index: usize,
    /// The campaign-level seed every trial stream is derived from.
    pub campaign_seed: u64,
    /// The 1-based attempt number (`1` on the first try, `2` after one
    /// retry, ...). Note [`TrialContext::rng`] deliberately ignores it.
    pub attempt: u32,
}

impl TrialContext {
    /// The trial's deterministic RNG.
    ///
    /// All attempts of a trial get the *same* stream: retries exist to
    /// absorb transient external failures, and a retried trial must
    /// produce the same output it would have produced on its first
    /// attempt.
    pub fn rng(&self) -> ChaCha8Rng {
        let mut rng = ChaCha8Rng::seed_from_u64(self.campaign_seed);
        rng.set_stream(self.trial_index as u64);
        rng
    }
}

/// Executes one kind of trial.
///
/// Implementations must be deterministic functions of
/// `(spec, ctx.rng())`: no ambient randomness, time, or global state.
/// The executor may call `run` concurrently from several threads.
pub trait TrialRunner: Sync {
    /// The per-trial parameters (one cell of the campaign grid).
    type Spec: Serialize + DeserializeOwned + Send + Sync;
    /// The per-trial result, journaled as JSON on completion.
    type Output: Serialize + DeserializeOwned + Send;

    /// Runs one trial. `Err` (and panics, which the executor converts to
    /// `Err`) trigger a bounded retry, then a journaled failure.
    fn run(&self, spec: &Self::Spec, ctx: &TrialContext) -> Result<Self::Output, String>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn trial_streams_are_independent_and_stable() {
        let ctx = |trial_index| TrialContext {
            trial_index,
            campaign_seed: 42,
            attempt: 1,
        };
        let mut r0 = ctx(0).rng();
        let mut r0b = ctx(0).rng();
        let mut r1 = ctx(1).rng();
        let first0 = r0.next_u64();
        assert_eq!(first0, r0b.next_u64(), "same trial, same stream");
        assert_ne!(first0, r1.next_u64(), "different trials, different streams");
    }

    #[test]
    fn failure_classification_follows_the_prefix_convention() {
        assert_eq!(
            classify_failure(&permanent_error("spec cell out of range")),
            FailureClass::Permanent
        );
        assert_eq!(
            classify_failure("  permanent: leading whitespace tolerated"),
            FailureClass::Permanent
        );
        assert_eq!(
            classify_failure("oracle budget exhausted"),
            FailureClass::Retryable
        );
        assert_eq!(
            classify_failure("trial panicked: index out of bounds"),
            FailureClass::Retryable
        );
        assert_eq!(classify_failure(""), FailureClass::Retryable);
        assert_eq!(
            permanent_error("bad spec"),
            format!("{PERMANENT_ERROR_PREFIX} bad spec")
        );
    }

    #[test]
    fn attempt_does_not_perturb_the_stream() {
        let mut first = TrialContext {
            trial_index: 3,
            campaign_seed: 9,
            attempt: 1,
        }
        .rng();
        let mut retry = TrialContext {
            trial_index: 3,
            campaign_seed: 9,
            attempt: 2,
        }
        .rng();
        for _ in 0..16 {
            assert_eq!(first.next_u64(), retry.next_u64());
        }
    }
}
