//! Probe: resume-append after a mid-write kill (file ends without a
//! trailing newline, or with outright garbage) with MORE THAN ONE
//! pending trial.

use rand::RngCore;
use serde::{Deserialize, Serialize};
use xbar_runtime::journal::read_journal;
use xbar_runtime::{run_campaign, Campaign, ExecutorConfig, NullSink, TrialContext, TrialRunner};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Spec {
    draws: usize,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Out {
    values: Vec<u64>,
}

struct Runner;

impl TrialRunner for Runner {
    type Spec = Spec;
    type Output = Out;

    fn run(&self, spec: &Spec, ctx: &TrialContext) -> Result<Out, String> {
        let mut rng = ctx.rng();
        Ok(Out {
            values: (0..spec.draws).map(|_| rng.next_u64()).collect(),
        })
    }
}

#[test]
fn resume_after_no_trailing_newline_kill() {
    let mut campaign = Campaign::new("probe", 77);
    for _ in 0..6 {
        campaign.push_trial(Spec { draws: 4 });
    }
    let path = std::env::temp_dir().join(format!("xbar_probe_{}.jsonl", std::process::id()));
    run_campaign(
        &Runner,
        &campaign,
        &ExecutorConfig::with_threads(1),
        Some(&path),
        false,
        &mut NullSink,
    )
    .unwrap();

    // Kill mid-write: keep header + 3 full records, then half of record 4,
    // with NO trailing newline (what a SIGKILL mid-write leaves behind).
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let kept = lines[..4].join("\n");
    let half = &lines[4][..lines[4].len() / 2];
    std::fs::write(&path, format!("{kept}\n{half}")).unwrap();

    // Resume: trials 3,4,5 are pending (record 3 was chopped).
    let resumed = run_campaign(
        &Runner,
        &campaign,
        &ExecutorConfig::with_threads(1),
        Some(&path),
        true,
        &mut NullSink,
    )
    .unwrap();
    assert!(resumed.all_ok());

    // The journal should now be readable and contain one Ok record per
    // trial. Does it?
    match read_journal(&path) {
        Ok((_, records)) => {
            let mut per_trial = vec![0usize; campaign.len()];
            for r in &records {
                per_trial[r.trial] += 1;
            }
            std::fs::remove_file(&path).ok();
            assert!(
                per_trial.iter().all(|&c| c == 1),
                "journal records per trial after resume: {per_trial:?}"
            );
        }
        Err(e) => {
            std::fs::remove_file(&path).ok();
            panic!("journal unreadable after resume: {e}");
        }
    }
}

#[test]
fn resume_after_trailing_garbage() {
    // A valid journal prefix followed by non-JSON bytes (not even UTF-8)
    // after the last newline — e.g. a torn page or a crashed writer from
    // another process. Resume must skip the recorded trials, drop the
    // garbage, and leave a clean journal behind.
    let mut campaign = Campaign::new("probe-garbage", 78);
    for _ in 0..5 {
        campaign.push_trial(Spec { draws: 3 });
    }
    let path =
        std::env::temp_dir().join(format!("xbar_probe_garbage_{}.jsonl", std::process::id()));
    run_campaign(
        &Runner,
        &campaign,
        &ExecutorConfig::with_threads(1),
        Some(&path),
        false,
        &mut NullSink,
    )
    .unwrap();

    // Keep header + 2 full records, then append raw garbage with no
    // trailing newline.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let mut bytes = format!("{}\n", lines[..3].join("\n")).into_bytes();
    bytes.extend_from_slice(&[0xff, 0xfe, b'{', b'g', b'a', b'r', b'b', 0x00]);
    std::fs::write(&path, &bytes).unwrap();

    // The garbage tail must not block reading the valid prefix.
    let (_, records) = read_journal(&path).expect("valid prefix should be readable");
    assert_eq!(records.len(), 2);

    // Resume: trials 2,3,4 are pending.
    let resumed = run_campaign(
        &Runner,
        &campaign,
        &ExecutorConfig::with_threads(2),
        Some(&path),
        true,
        &mut NullSink,
    )
    .unwrap();
    assert!(resumed.all_ok());
    assert_eq!(resumed.metrics.skipped, 2);
    assert_eq!(resumed.metrics.completed, 3);

    // The final journal is fully clean: garbage gone, one Ok record per
    // trial, every line valid JSON.
    let (_, records) = read_journal(&path).expect("journal should be clean after resume");
    let mut per_trial = vec![0usize; campaign.len()];
    for r in &records {
        per_trial[r.trial] += 1;
    }
    std::fs::remove_file(&path).ok();
    assert!(
        per_trial.iter().all(|&c| c == 1),
        "journal records per trial after resume: {per_trial:?}"
    );
}
