//! A small blocking client for the campaign service.
//!
//! Used by the `xbar bench serve` driver, the CI smoke test, and the
//! integration tests; real attack tooling can speak the NDJSON protocol
//! directly (see [`crate::protocol`]).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use xbar_core::oracle::QueryRecord;

use crate::protocol::{codes, Request, Response, SessionStatus};
use crate::{Result, ServeError};

/// A blocking NDJSON client: one request in flight at a time.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// How long to keep retrying [`codes::BUSY`] backpressure responses
    /// before giving up.
    busy_patience: Duration,
}

impl Client {
    /// Connects to `addr` (anything implementing `ToSocketAddrs`, e.g.
    /// `"127.0.0.1:7878"`).
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
            busy_patience: Duration::from_secs(30),
        })
    }

    /// Builder-style setter for the backpressure retry patience.
    #[must_use]
    pub fn with_busy_patience(mut self, patience: Duration) -> Self {
        self.busy_patience = patience;
        self
    }

    /// Sends one raw request and reads its response line.
    pub fn request(&mut self, request: &Request) -> Result<Response> {
        let mut line = serde_json::to_string(request)?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(ServeError::Protocol("server closed the connection".into()));
        }
        Ok(serde_json::from_str(reply.trim())?)
    }

    fn expect_ok(response: Response) -> Result<Response> {
        if response.ok {
            Ok(response)
        } else {
            Err(ServeError::Rejected {
                code: response.code.unwrap_or_else(|| "unknown".into()),
                message: response.error.unwrap_or_default(),
            })
        }
    }

    /// Opens (or resumes) a session and returns its authoritative
    /// status — on resume, `status.used` is where the query index
    /// continues.
    pub fn hello(
        &mut self,
        session: &str,
        victim: Option<&str>,
        seed: Option<u64>,
        budget: Option<u64>,
    ) -> Result<SessionStatus> {
        let mut request = Request::new("hello");
        request.session = Some(session.to_string());
        request.victim = victim.map(str::to_string);
        request.seed = seed;
        request.budget = budget;
        let response = Self::expect_ok(self.request(&request)?)?;
        response
            .status
            .ok_or_else(|| ServeError::Protocol("hello response missing status".into()))
    }

    /// Issues a batch of queries, transparently retrying backpressure
    /// ([`codes::BUSY`]) until `busy_patience` runs out. Returns the
    /// records in input order, indices continuing the session's stream.
    pub fn query(&mut self, session: &str, inputs: &[Vec<f64>]) -> Result<Vec<QueryRecord>> {
        let mut request = Request::new("query");
        request.session = Some(session.to_string());
        request.inputs = Some(inputs.to_vec());
        let deadline = std::time::Instant::now() + self.busy_patience;
        loop {
            let response = self.request(&request)?;
            if response.ok {
                return response
                    .records
                    .ok_or_else(|| ServeError::Protocol("query response missing records".into()));
            }
            let code = response.code.as_deref().unwrap_or("unknown");
            if code == codes::BUSY && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            return Err(ServeError::Rejected {
                code: code.to_string(),
                message: response.error.unwrap_or_default(),
            });
        }
    }

    /// Detaches the session, leaving it resumable.
    pub fn close(&mut self, session: &str) -> Result<SessionStatus> {
        let mut request = Request::new("close");
        request.session = Some(session.to_string());
        let response = Self::expect_ok(self.request(&request)?)?;
        response
            .status
            .ok_or_else(|| ServeError::Protocol("close response missing status".into()))
    }

    /// Scrapes the live metrics plane as a JSON snapshot. Read-only:
    /// consumes no budget and is answered even while the server drains
    /// or its session table is full.
    pub fn stats(&mut self) -> Result<serde::Value> {
        let response = Self::expect_ok(self.request(&Request::new("stats"))?)?;
        response
            .stats
            .ok_or_else(|| ServeError::Protocol("stats response missing stats".into()))
    }

    /// Scrapes the live metrics plane in Prometheus text exposition
    /// format.
    pub fn stats_prometheus(&mut self) -> Result<String> {
        let mut request = Request::new("stats");
        request.format = Some("prom".to_string());
        let response = Self::expect_ok(self.request(&request)?)?;
        response
            .text
            .ok_or_else(|| ServeError::Protocol("stats response missing text".into()))
    }

    /// Asks the server to drain and exit.
    pub fn shutdown_server(&mut self) -> Result<()> {
        Self::expect_ok(self.request(&Request::new("shutdown"))?)?;
        Ok(())
    }
}
