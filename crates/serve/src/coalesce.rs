//! The cross-session batch coalescer.
//!
//! Sessions enqueue evaluation jobs; a pool of worker threads drains
//! the queue, and — with coalescing enabled — each worker fills one
//! backend batch from *unrelated* sessions' pending jobs before
//! evaluating, flushing on size (`max_batch` samples) or deadline
//! (`flush_after`). Jobs for different victims never share a batch;
//! jobs for the same victim do, which is where the throughput comes
//! from: the `Blocked` backend materialises the victim's effective
//! weights and line conductances once per batch, so a batch carrying
//! 64 sessions' queries costs barely more than one session's.
//!
//! Correctness does not depend on what lands in a batch: every sample
//! carries its own [`QueryKey`] and
//! [`Oracle::observe_batch_keyed`] draws each sample's noise from its
//! key's stream, so results are bit-identical however jobs are grouped
//! — the property the solo-vs-interleaved integration test pins down.
//!
//! Shutdown is by sender-drop: workers block on the queue until every
//! [`Coalescer`] clone is gone, then drain what remains and exit —
//! in-flight jobs are always answered.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xbar_core::oracle::{Observation, Oracle, QueryKey};
use xbar_obs::names;
use xbar_obs::MetricsShard;

use crate::metrics::ServeMetrics;

/// One evaluation job: a contiguous slice of one session's reserved
/// queries, plus the channel its observations go back on.
pub struct Job {
    /// The deployed victim the queries target.
    pub oracle: Arc<Oracle>,
    /// Registry name of the victim (batches group by this).
    pub victim: String,
    /// Query inputs, one per sample.
    pub inputs: Vec<Vec<f64>>,
    /// Per-sample noise keys, parallel to `inputs`.
    pub keys: Vec<QueryKey>,
    /// Where the observations (or an evaluation error) are delivered.
    pub reply: mpsc::Sender<std::result::Result<Vec<Observation>, String>>,
}

/// A [`Job`] plus the instant it entered the queue, so the dequeuing
/// worker can attribute queue-wait latency to the job's victim.
struct QueuedJob {
    job: Job,
    enqueued: Instant,
}

/// Coalescing policy for a worker pool.
#[derive(Debug, Clone, Copy)]
pub struct CoalescePolicy {
    /// Whether to coalesce at all; `false` evaluates each job alone
    /// (the bench baseline).
    pub enabled: bool,
    /// Flush once a batch holds this many samples.
    pub max_batch: usize,
    /// Flush once the oldest job in the batch has waited this long.
    pub flush_after: Duration,
}

impl Default for CoalescePolicy {
    fn default() -> Self {
        CoalescePolicy {
            enabled: true,
            max_batch: 256,
            flush_after: Duration::from_millis(2),
        }
    }
}

/// Handle for enqueuing jobs onto the worker pool. Clone one per
/// connection; drop every clone (and the pool's own) to initiate drain.
#[derive(Clone)]
pub struct Coalescer {
    tx: mpsc::Sender<QueuedJob>,
    inflight: Arc<AtomicUsize>,
    max_inflight: usize,
}

impl Coalescer {
    /// Tries to enqueue `job`, enforcing the in-flight sample cap.
    ///
    /// Returns `Err(job)` (backpressure — nothing enqueued, nothing
    /// consumed downstream) when the queue already holds
    /// `max_inflight` samples or the pool is gone.
    pub fn enqueue(&self, job: Job) -> std::result::Result<(), Job> {
        let samples = job.inputs.len();
        // Optimistic reservation: bump, then back out on overflow. Two
        // racing enqueues can both back out slightly early, which errs
        // on the side of shedding load — acceptable for a cap.
        let occupied = self.inflight.fetch_add(samples, Ordering::SeqCst);
        if occupied + samples > self.max_inflight {
            self.inflight.fetch_sub(samples, Ordering::SeqCst);
            return Err(job);
        }
        xbar_obs::observe(names::SERVE_QUEUE_DEPTH, (occupied + samples) as f64);
        let queued = QueuedJob {
            job,
            enqueued: Instant::now(),
        };
        match self.tx.send(queued) {
            Ok(()) => Ok(()),
            Err(mpsc::SendError(queued)) => {
                self.inflight.fetch_sub(samples, Ordering::SeqCst);
                Err(queued.job)
            }
        }
    }

    /// Samples currently enqueued-but-unevaluated (the backpressure
    /// level) — scraped as the `serve.inflight` gauge.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }
}

/// The worker pool: owns the threads and the sending half handed to
/// connections via [`WorkerPool::coalescer`].
pub struct WorkerPool {
    coalescer: Option<Coalescer>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` evaluation threads applying `policy`.
    /// `max_inflight` caps queued samples across the pool
    /// (backpressure); `collector` observes the pool's trial plane and
    /// `metrics` its live plane (each worker records into its own
    /// shard) when given.
    pub fn start(
        workers: usize,
        policy: CoalescePolicy,
        max_inflight: usize,
        collector: Option<Arc<dyn xbar_obs::Collector>>,
        metrics: Option<&ServeMetrics>,
    ) -> Self {
        let (tx, rx) = mpsc::channel::<QueuedJob>();
        let rx = Arc::new(Mutex::new(rx));
        let inflight = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers.max(1))
            .map(|index| {
                let rx = Arc::clone(&rx);
                let inflight = Arc::clone(&inflight);
                let collector = collector.clone();
                let shard = metrics.map(|m| m.worker_shard(index));
                std::thread::spawn(move || match collector {
                    Some(collector) => xbar_obs::with_scope(collector, None, || {
                        worker_loop(&rx, &inflight, policy, shard.as_deref())
                    }),
                    None => worker_loop(&rx, &inflight, policy, shard.as_deref()),
                })
            })
            .collect();
        WorkerPool {
            coalescer: Some(Coalescer {
                tx,
                inflight,
                max_inflight,
            }),
            workers: handles,
        }
    }

    /// A cloneable enqueue handle.
    pub fn coalescer(&self) -> Coalescer {
        self.coalescer.clone().expect("pool not yet shut down")
    }

    /// Drains and joins the pool: in-flight jobs are evaluated and
    /// answered first. Callers must drop every [`Coalescer`] clone they
    /// handed out, or this blocks until those clones die.
    pub fn shutdown(mut self) {
        self.coalescer.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    rx: &Mutex<mpsc::Receiver<QueuedJob>>,
    inflight: &AtomicUsize,
    policy: CoalescePolicy,
    shard: Option<&MetricsShard>,
) {
    loop {
        // One worker at a time owns the receiver, from blocking recv
        // through batch accumulation; it releases before evaluating, so
        // dequeueing serialises (which is what fills batches) while
        // evaluation parallelises. The lock holder is always
        // progressing toward release — blocked recv ends when a job
        // arrives, accumulation ends on size or deadline — so waiters
        // starve for at most one flush window.
        let (queued, samples) = {
            let queue = rx.lock().expect("queue lock");
            let first = match queue.recv() {
                Ok(job) => job,
                // Every sender gone: drained, exit.
                Err(mpsc::RecvError) => return,
            };
            let mut queued = vec![first];
            let mut samples = queued[0].job.inputs.len();
            if policy.enabled {
                let deadline = Instant::now() + policy.flush_after;
                while samples < policy.max_batch {
                    match queue.try_recv() {
                        Ok(job) => {
                            samples += job.job.inputs.len();
                            queued.push(job);
                        }
                        Err(mpsc::TryRecvError::Empty) => {
                            if Instant::now() >= deadline {
                                break;
                            }
                            std::thread::sleep(Duration::from_micros(100));
                        }
                        Err(mpsc::TryRecvError::Disconnected) => break,
                    }
                }
            }
            (queued, samples)
        };
        if let Some(shard) = shard {
            // Flush reason: did the batch fill, or did it go out early
            // (deadline expiry, queue drain, coalescing disabled)?
            let reason = if samples >= policy.max_batch {
                names::SERVE_FLUSH_SIZE
            } else {
                names::SERVE_FLUSH_DEADLINE
            };
            shard.counter_add(xbar_obs::metrics::SERVER_SCOPE, reason, 1);
            let now = Instant::now();
            for q in &queued {
                let wait = now.saturating_duration_since(q.enqueued);
                shard.record(
                    &q.job.victim,
                    names::SERVE_QUEUE_WAIT_NS,
                    wait.as_nanos() as u64,
                );
            }
        }
        let jobs: Vec<Job> = queued.into_iter().map(|q| q.job).collect();
        evaluate(&jobs, shard);
        inflight.fetch_sub(samples, Ordering::SeqCst);
    }
}

/// Evaluates a flush group: one keyed batch per victim, results split
/// back per job.
fn evaluate(jobs: &[Job], shard: Option<&MetricsShard>) {
    // Group job indices by victim name, preserving arrival order.
    let mut groups: Vec<(&str, Vec<usize>)> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        match groups.iter_mut().find(|(name, _)| *name == job.victim) {
            Some((_, members)) => members.push(i),
            None => groups.push((&job.victim, vec![i])),
        }
    }
    for (victim, members) in &groups {
        let oracle = &jobs[members[0]].oracle;
        let mut inputs: Vec<&[f64]> = Vec::new();
        let mut keys: Vec<QueryKey> = Vec::new();
        for &i in members {
            inputs.extend(jobs[i].inputs.iter().map(Vec::as_slice));
            keys.extend_from_slice(&jobs[i].keys);
        }
        xbar_obs::count(names::SERVE_COALESCED_BATCH, 1);
        xbar_obs::observe(names::SERVE_BATCH_OCCUPANCY, inputs.len() as f64);
        if let Some(shard) = shard {
            // The occupancy histogram's *sum* is the total samples
            // evaluated for this victim (deterministic); its count and
            // spread describe how coalescing happened to batch them.
            shard.record(victim, names::SERVE_FLUSH_OCCUPANCY, inputs.len() as u64);
        }
        match oracle.observe_batch_keyed(&inputs, &keys) {
            Ok(mut observations) => {
                for &i in members {
                    let take = jobs[i].inputs.len();
                    let rest = observations.split_off(take);
                    let own = std::mem::replace(&mut observations, rest);
                    let _ = jobs[i].reply.send(Ok(own));
                }
            }
            Err(e) => {
                for &i in members {
                    let _ = jobs[i].reply.send(Err(e.to_string()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_core::oracle::OracleConfig;
    use xbar_crossbar::power::PowerModel;
    use xbar_linalg::Matrix;
    use xbar_nn::activation::Activation;
    use xbar_nn::network::SingleLayerNet;

    fn victim() -> Arc<Oracle> {
        let net = SingleLayerNet::from_weights(
            Matrix::from_rows(&[&[1.0, -0.5, 0.2], &[0.25, 0.5, -1.0]]),
            Activation::Identity,
        );
        let cfg = OracleConfig::ideal().with_power(PowerModel::default().with_noise(0.05));
        Arc::new(Oracle::new(net, &cfg, 77).unwrap())
    }

    fn job(
        oracle: &Arc<Oracle>,
        seed: u64,
        base: u64,
        inputs: Vec<Vec<f64>>,
    ) -> (
        Job,
        mpsc::Receiver<std::result::Result<Vec<Observation>, String>>,
    ) {
        let (reply, rx) = mpsc::channel();
        let keys = (0..inputs.len() as u64)
            .map(|i| QueryKey::new(seed, base + i))
            .collect();
        (
            Job {
                oracle: Arc::clone(oracle),
                victim: "toy".to_string(),
                inputs,
                keys,
                reply,
            },
            rx,
        )
    }

    #[test]
    fn coalesced_results_match_direct_keyed_evaluation() {
        let oracle = victim();
        let pool = WorkerPool::start(2, CoalescePolicy::default(), 1024, None, None);
        let coalescer = pool.coalescer();
        let inputs_a = vec![vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]];
        let inputs_b = vec![vec![-0.1, 0.7, 0.0]];
        let (job_a, rx_a) = job(&oracle, 1, 0, inputs_a.clone());
        let (job_b, rx_b) = job(&oracle, 2, 5, inputs_b.clone());
        coalescer.enqueue(job_a).map_err(|_| ()).unwrap();
        coalescer.enqueue(job_b).map_err(|_| ()).unwrap();
        let got_a = rx_a.recv().unwrap().unwrap();
        let got_b = rx_b.recv().unwrap().unwrap();
        drop(coalescer);
        pool.shutdown();

        let refs_a: Vec<&[f64]> = inputs_a.iter().map(Vec::as_slice).collect();
        let want_a = oracle
            .observe_batch_keyed(&refs_a, &[QueryKey::new(1, 0), QueryKey::new(1, 1)])
            .unwrap();
        assert_eq!(got_a, want_a);
        let refs_b: Vec<&[f64]> = inputs_b.iter().map(Vec::as_slice).collect();
        let want_b = oracle
            .observe_batch_keyed(&refs_b, &[QueryKey::new(2, 5)])
            .unwrap();
        assert_eq!(got_b, want_b);
    }

    #[test]
    fn backpressure_rejects_without_losing_jobs() {
        let oracle = victim();
        // One worker, tiny in-flight cap.
        let pool = WorkerPool::start(1, CoalescePolicy::default(), 2, None, None);
        let coalescer = pool.coalescer();
        let (job_big, _rx) = job(&oracle, 1, 0, vec![vec![0.0; 3]; 3]);
        // 3 samples > cap of 2: rejected, job returned intact.
        let rejected = coalescer.enqueue(job_big).unwrap_err();
        assert_eq!(rejected.inputs.len(), 3);
        // Within the cap still works.
        let (job_ok, rx) = job(&oracle, 1, 0, vec![vec![0.0; 3]; 2]);
        coalescer.enqueue(job_ok).map_err(|_| ()).unwrap();
        assert!(rx.recv().unwrap().is_ok());
        drop(coalescer);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_jobs() {
        let oracle = victim();
        let pool = WorkerPool::start(1, CoalescePolicy::default(), 4096, None, None);
        let coalescer = pool.coalescer();
        let receivers: Vec<_> = (0..32)
            .map(|i| {
                let (j, rx) = job(&oracle, i, 0, vec![vec![0.1, 0.1, 0.1]]);
                coalescer.enqueue(j).map_err(|_| ()).unwrap();
                rx
            })
            .collect();
        drop(coalescer);
        pool.shutdown();
        for rx in receivers {
            assert!(rx.recv().unwrap().is_ok(), "job dropped during drain");
        }
    }
}
