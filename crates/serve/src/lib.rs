//! # xbar-serve
//!
//! The multi-tenant attack-campaign service: a long-running TCP server
//! that hosts a registry of victim crossbar oracles and serves budgeted
//! query streams to many concurrent attack sessions — the paper's
//! query-metered black-box threat model turned into traffic.
//!
//! ## Determinism contract
//!
//! A session's results are a pure function of `(victim, session seed,
//! session query index)` — the service reuses the oracle's own noise
//! keying through [`xbar_core::oracle::Oracle::observe_batch_keyed`],
//! so a session's [`xbar_core::oracle::QueryRecord`] stream is
//! bit-identical whether it is served alone, interleaved with other
//! sessions, coalesced into shared evaluation batches, or resumed after
//! a server restart. The float payloads survive the wire because the
//! vendored `serde_json` round-trips `f64` exactly
//! (`float_roundtrip`).
//!
//! ## Architecture
//!
//! * [`protocol`] — the newline-delimited JSON wire protocol
//!   ([`Request`] / [`Response`]).
//! * [`registry`] — [`VictimRegistry`]: named, deployed, non-drifting
//!   oracles shared by every session.
//! * [`session`] — [`SessionManager`]: per-session budgets and query
//!   indices with optional crash-tolerant JSONL persistence
//!   (`xbar-runtime`'s appender), so a reconnecting client resumes
//!   exactly where it died.
//! * [`coalesce`] — the cross-session batch coalescer: a worker pool
//!   that fills one backend batch from unrelated sessions' pending
//!   queries, flushing on size or deadline.
//! * [`server`] — [`Server`]: the TCP accept loop, admission control,
//!   backpressure, and graceful drain.
//! * [`metrics`] — the live telemetry plane's shard layout
//!   ([`metrics::ServeMetrics`]): per-worker and per-handler metric
//!   shards merged on scrape, exposed through the read-only `stats` op
//!   and the periodic `--metrics` snapshot file.
//! * [`client`] — [`Client`]: a small blocking client used by the
//!   bench driver, the CI smoke test, and the integration tests.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod coalesce;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod session;

pub use client::Client;
pub use metrics::{ServeMetrics, METRICS_RECORD_KIND};
pub use protocol::{codes, Request, Response, SessionStatus};
pub use registry::VictimRegistry;
pub use server::{ServeConfig, Server};
pub use session::{SessionManager, SessionRecord};

/// Errors from the service and its client.
#[derive(Debug)]
pub enum ServeError {
    /// Socket or filesystem failure.
    Io(std::io::Error),
    /// A malformed wire message or an unexpected response shape.
    Protocol(String),
    /// The server answered a request with an error response.
    Rejected {
        /// Machine-readable code (one of [`protocol::codes`]).
        code: String,
        /// Human-readable message.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Rejected { code, message } => write!(f, "rejected ({code}): {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<serde_json::Error> for ServeError {
    fn from(e: serde_json::Error) -> Self {
        ServeError::Protocol(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
