//! The service's live-telemetry glue: shard layout, gauge refresh, and
//! the bridge from `xbar-obs`'s snapshot JSON into the wire protocol's
//! `serde` values.
//!
//! The registry itself lives in [`xbar_obs::metrics`]; this module
//! decides *who records where* so the hot path never takes a shared
//! lock:
//!
//! * shard 0 — gauges (single-writer by convention) and the session
//!   manager's journal-write timings (already serialised by the session
//!   lock);
//! * shards `1 ..= workers` — one per evaluation worker (queue wait,
//!   flush reasons, batch occupancy);
//! * the remaining [`HANDLER_SHARDS`] — connection handlers, assigned
//!   round-robin (request latency, request/query/rejection counters).
//!
//! Because counters and histogram merges are commutative
//! ([`xbar_obs::Histogram::merge`]), a scrape's deterministic fields
//! are identical however the work was spread over shards — the
//! cross-worker e2e test pins exactly this.

use std::sync::Arc;

use xbar_obs::json::JsonValue;
use xbar_obs::metrics::SERVER_SCOPE;
use xbar_obs::{MetricsRegistry, MetricsShard};

/// The `kind` tag stamped on every periodic metrics-snapshot record the
/// server appends to its `--metrics` JSONL file.
pub const METRICS_RECORD_KIND: &str = "xbar-serve-metrics";

/// Number of shards reserved for connection handlers.
pub const HANDLER_SHARDS: usize = 4;

/// The server's shard plan: one registry sized for `workers` evaluation
/// threads plus the fixed handler pool, with accessors that encode the
/// layout above.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    registry: Arc<MetricsRegistry>,
    workers: usize,
}

impl ServeMetrics {
    /// A registry laid out for `workers` evaluation workers.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        ServeMetrics {
            registry: Arc::new(MetricsRegistry::new(1 + workers + HANDLER_SHARDS)),
            workers,
        }
    }

    /// The underlying registry (for snapshots and gauges).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Shard 0: gauges and session-journal timings.
    pub fn server_shard(&self) -> Arc<MetricsShard> {
        self.registry.shard(0)
    }

    /// The shard owned by evaluation worker `index`.
    pub fn worker_shard(&self, index: usize) -> Arc<MetricsShard> {
        self.registry.shard(1 + (index % self.workers))
    }

    /// The shard for connection-handler ordinal `index` (round-robin
    /// over the handler pool).
    pub fn handler_shard(&self, index: usize) -> Arc<MetricsShard> {
        self.registry
            .shard(1 + self.workers + (index % HANDLER_SHARDS))
    }

    /// Refreshes the point-in-time gauges ahead of a scrape or a
    /// periodic snapshot.
    pub fn refresh_gauges(&self, attached_sessions: usize, inflight: usize, draining: bool) {
        let names = xbar_obs::names::SERVE_ATTACHED_SESSIONS;
        self.registry
            .gauge_set(SERVER_SCOPE, names, attached_sessions as f64);
        self.registry.gauge_set(
            SERVER_SCOPE,
            xbar_obs::names::SERVE_INFLIGHT,
            inflight as f64,
        );
        self.registry.gauge_set(
            SERVER_SCOPE,
            xbar_obs::names::SERVE_DRAINING,
            if draining { 1.0 } else { 0.0 },
        );
    }
}

/// Converts the obs crate's zero-dependency JSON tree into the wire
/// protocol's [`serde::Value`] so a snapshot can ride inside a
/// [`crate::protocol::Response`]. The two enums are structurally
/// identical; this is a mechanical walk.
pub fn json_to_value(json: &JsonValue) -> serde::Value {
    match json {
        JsonValue::Null => serde::Value::Null,
        JsonValue::Bool(b) => serde::Value::Bool(*b),
        JsonValue::U64(n) => serde::Value::U64(*n),
        JsonValue::I64(n) => serde::Value::I64(*n),
        JsonValue::F64(x) => serde::Value::F64(*x),
        JsonValue::Str(s) => serde::Value::Str(s.clone()),
        JsonValue::Array(items) => serde::Value::Array(items.iter().map(json_to_value).collect()),
        JsonValue::Object(fields) => serde::Value::Object(
            fields
                .iter()
                .map(|(k, v)| (k.clone(), json_to_value(v)))
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_plan_separates_writers() {
        let metrics = ServeMetrics::new(3);
        assert_eq!(metrics.registry().num_shards(), 1 + 3 + HANDLER_SHARDS);
        // Workers and handlers never share a shard with shard 0.
        for w in 0..6 {
            assert!(!Arc::ptr_eq(
                &metrics.worker_shard(w),
                &metrics.server_shard()
            ));
        }
        for h in 0..10 {
            assert!(!Arc::ptr_eq(
                &metrics.handler_shard(h),
                &metrics.server_shard()
            ));
            assert!(!Arc::ptr_eq(
                &metrics.handler_shard(h),
                &metrics.worker_shard(0)
            ));
        }
        // Ordinals wrap instead of panicking.
        assert!(Arc::ptr_eq(
            &metrics.worker_shard(0),
            &metrics.worker_shard(3)
        ));
        assert!(Arc::ptr_eq(
            &metrics.handler_shard(1),
            &metrics.handler_shard(1 + HANDLER_SHARDS)
        ));
    }

    #[test]
    fn json_to_value_walks_every_variant() {
        let mut obj = JsonValue::object();
        obj.push("b", true)
            .push("n", 3u64)
            .push("i", -4i64)
            .push("x", 0.5)
            .push("s", "hi")
            .push(
                "a",
                JsonValue::Array(vec![JsonValue::Null, JsonValue::U64(1)]),
            );
        let value = json_to_value(&obj);
        assert_eq!(value.get("b"), Some(&serde::Value::Bool(true)));
        assert_eq!(value.get("n"), Some(&serde::Value::U64(3)));
        assert_eq!(value.get("i"), Some(&serde::Value::I64(-4)));
        assert_eq!(value.get("x"), Some(&serde::Value::F64(0.5)));
        assert_eq!(value.get("s").and_then(serde::Value::as_str), Some("hi"));
        assert_eq!(
            value.get("a").and_then(serde::Value::as_array),
            Some(&[serde::Value::Null, serde::Value::U64(1)][..])
        );
    }

    #[test]
    fn gauge_refresh_overwrites() {
        let metrics = ServeMetrics::new(2);
        metrics.refresh_gauges(5, 17, false);
        metrics.refresh_gauges(2, 0, true);
        let snapshot = metrics.registry().snapshot();
        use xbar_obs::Metric;
        let gauge = |name: &str| match snapshot.get(SERVER_SCOPE, name) {
            Some(Metric::Gauge(v)) => *v,
            other => panic!("expected gauge for {name}, got {other:?}"),
        };
        assert_eq!(gauge(xbar_obs::names::SERVE_ATTACHED_SESSIONS), 2.0);
        assert_eq!(gauge(xbar_obs::names::SERVE_INFLIGHT), 0.0);
        assert_eq!(gauge(xbar_obs::names::SERVE_DRAINING), 1.0);
    }
}
