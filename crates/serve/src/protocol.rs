//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Every line the client sends is one [`Request`]; every line the
//! server answers is one [`Response`], in request order. Both sides are
//! flat structs with optional fields (rather than tagged enums) because
//! the vendored serde derive supports exactly named-field structs and
//! unit enums — and because it keeps the protocol trivially greppable
//! on the wire.
//!
//! A session's life:
//!
//! ```text
//! → {"op":"hello","session":"s1","victim":"mnist","seed":7,"budget":100}
//! ← {"ok":true,"op":"hello","status":{"session":"s1","victim":"mnist","seed":7,"budget":100,"used":0},...}
//! → {"op":"query","session":"s1","inputs":[[0.1,0.9,...],[...]]}
//! ← {"ok":true,"op":"query","records":[{"index":0,"observation":{...}},...],...}
//! → {"op":"close","session":"s1"}
//! ← {"ok":true,"op":"close",...}
//! ```
//!
//! Reconnecting with the same `session` id resumes the budget remainder
//! and query index (`hello` may then omit `victim`/`seed`/`budget`; if
//! given they must match). Error responses set `ok:false` plus a
//! machine-readable `code` from [`codes`] — `codes::BUSY` means
//! backpressure: nothing was consumed and the client should retry.

use serde::{Deserialize, Serialize};
use xbar_core::oracle::QueryRecord;

/// Machine-readable error codes carried in [`Response::code`].
pub mod codes {
    /// Malformed request (missing field, bad dimensions, unknown op).
    pub const USAGE: &str = "usage";
    /// `hello` named a victim the registry doesn't host.
    pub const UNKNOWN_VICTIM: &str = "unknown_victim";
    /// `query`/`close` named a session that was never opened here.
    pub const UNKNOWN_SESSION: &str = "unknown_session";
    /// Admission control: the attached-session table is full.
    pub const SESSION_TABLE_FULL: &str = "session_table_full";
    /// Backpressure: too many queries in flight; retry, nothing was
    /// consumed.
    pub const BUSY: &str = "busy";
    /// The batch would overrun the session's query budget; nothing was
    /// consumed.
    pub const BUDGET_EXHAUSTED: &str = "budget_exhausted";
    /// A resume `hello` contradicted the session's stored victim/seed/
    /// budget.
    pub const CONFLICT: &str = "conflict";
    /// The server is draining and accepts no new work.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// The server failed internally (evaluation error).
    pub const INTERNAL: &str = "internal";
}

/// One client request line.
///
/// `op` selects the operation; the other fields are that operation's
/// arguments:
///
/// * `"hello"` — open or resume a session: `session` (required),
///   `victim` + `seed` (required for a new session), `budget`
///   (optional, `None` = unlimited).
/// * `"query"` — issue a batch: `session` + non-empty `inputs`.
/// * `"close"` — detach a session (its state persists for resume).
/// * `"stats"` — scrape the live metrics plane. Read-only: consumes no
///   budget, needs no session, and is admitted even when the session
///   table is full or the server is draining. `format` selects the
///   encoding: absent/`"json"` fills [`Response::stats`], `"prom"`
///   fills [`Response::text`] with Prometheus exposition format.
/// * `"shutdown"` — ask the server to drain and exit (used by the
///   bench driver and CI smoke test).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Operation: `hello` | `query` | `close` | `stats` | `shutdown`.
    pub op: String,
    /// Session id (client-chosen, stable across reconnects).
    pub session: Option<String>,
    /// Victim name in the server's registry (`hello` on a new session).
    pub victim: Option<String>,
    /// Session noise seed (`hello` on a new session).
    pub seed: Option<u64>,
    /// Query budget (`hello`; `None` = unlimited).
    pub budget: Option<u64>,
    /// Query inputs, one vector per query (`query`).
    pub inputs: Option<Vec<Vec<f64>>>,
    /// Output encoding for `stats`: `"json"` (default) or `"prom"`.
    pub format: Option<String>,
}

impl Request {
    /// A bare request with only `op` set.
    pub fn new(op: &str) -> Self {
        Request {
            op: op.to_string(),
            session: None,
            victim: None,
            seed: None,
            budget: None,
            inputs: None,
            format: None,
        }
    }
}

/// A session's authoritative accounting, as the server sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionStatus {
    /// Session id.
    pub session: String,
    /// Victim the session is bound to.
    pub victim: String,
    /// The session's noise seed.
    pub seed: u64,
    /// Query budget (`None` = unlimited).
    pub budget: Option<u64>,
    /// Queries consumed so far — also the next global query index.
    pub used: u64,
}

/// One server response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Whether the request succeeded.
    pub ok: bool,
    /// Echo of the request's `op`.
    pub op: String,
    /// Error code (one of [`codes`]); present iff `ok` is false.
    pub code: Option<String>,
    /// Human-readable error; present iff `ok` is false.
    pub error: Option<String>,
    /// Session accounting after the request (`hello`, `query`, `close`).
    pub status: Option<SessionStatus>,
    /// The batch's results, in input order (`query`).
    pub records: Option<Vec<QueryRecord>>,
    /// Live metrics snapshot (`stats` with JSON format).
    pub stats: Option<serde::Value>,
    /// Pre-rendered text payload (`stats` with `"prom"` format).
    pub text: Option<String>,
}

impl Response {
    /// A success response for `op`.
    pub fn success(op: &str) -> Self {
        Response {
            ok: true,
            op: op.to_string(),
            code: None,
            error: None,
            status: None,
            records: None,
            stats: None,
            text: None,
        }
    }

    /// An error response for `op` with a [`codes`] code and message.
    pub fn failure(op: &str, code: &str, message: impl Into<String>) -> Self {
        Response {
            ok: false,
            op: op.to_string(),
            code: Some(code.to_string()),
            error: Some(message.into()),
            status: None,
            records: None,
            stats: None,
            text: None,
        }
    }

    /// Builder-style setter for [`Response::status`].
    #[must_use]
    pub fn with_status(mut self, status: SessionStatus) -> Self {
        self.status = Some(status);
        self
    }

    /// Builder-style setter for [`Response::records`].
    #[must_use]
    pub fn with_records(mut self, records: Vec<QueryRecord>) -> Self {
        self.records = Some(records);
        self
    }

    /// Builder-style setter for [`Response::stats`].
    #[must_use]
    pub fn with_stats(mut self, stats: serde::Value) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Builder-style setter for [`Response::text`].
    #[must_use]
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.text = Some(text.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_with_absent_fields() {
        let mut req = Request::new("hello");
        req.session = Some("s1".into());
        req.seed = Some(7);
        let line = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back, req);
        assert!(back.inputs.is_none());
    }

    #[test]
    fn stats_response_roundtrips_arbitrary_value() {
        let snapshot = serde::Value::Object(vec![(
            "victims".to_string(),
            serde::Value::Object(vec![(
                "mnist".to_string(),
                serde::Value::Object(vec![(
                    "counters".to_string(),
                    serde::Value::Object(vec![(
                        "serve.queries".to_string(),
                        serde::Value::U64(42),
                    )]),
                )]),
            )]),
        )]);
        let resp = Response::success("stats").with_stats(snapshot.clone());
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.stats, Some(snapshot));
        let prom = Response::success("stats").with_text("# TYPE x counter\nx 1\n");
        let line = serde_json::to_string(&prom).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.text.as_deref(), Some("# TYPE x counter\nx 1\n"));
    }

    #[test]
    fn response_roundtrips_with_records() {
        use xbar_core::oracle::Observation;
        let resp = Response::success("query").with_records(vec![QueryRecord {
            index: 3,
            observation: Observation {
                output: Some(vec![0.125, -7.5e-3]),
                label: Some(0),
                power: 0.25,
            },
        }]);
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
    }
}
