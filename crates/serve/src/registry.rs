//! The victim registry: named, deployed oracles shared by all sessions.

use std::collections::BTreeMap;
use std::sync::Arc;

use xbar_core::oracle::Oracle;

use crate::{Result, ServeError};

/// A read-only map from victim name to its deployed [`Oracle`].
///
/// Registered once before the server starts; sessions bind to a victim
/// by name in their `hello`. Every query against a victim goes through
/// [`Oracle::observe_batch_keyed`], which never mutates the deployment
/// — so one `Arc<Oracle>` serves every session and worker thread.
#[derive(Default)]
pub struct VictimRegistry {
    victims: BTreeMap<String, Arc<Oracle>>,
}

impl VictimRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        VictimRegistry::default()
    }

    /// Registers `oracle` under `name`, replacing any previous entry.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] if the oracle carries an active drift
    /// schedule: a drifting deployment's hardware is a function of its
    /// own query clock, which keyed multi-tenant serving cannot
    /// reproduce (checked by probing an empty keyed batch).
    pub fn insert(&mut self, name: &str, oracle: Oracle) -> Result<()> {
        if oracle.observe_batch_keyed(&[], &[]).is_err() {
            return Err(ServeError::Protocol(format!(
                "victim {name:?} has an active drift schedule and cannot be served"
            )));
        }
        self.victims.insert(name.to_string(), Arc::new(oracle));
        Ok(())
    }

    /// Looks up a victim by name.
    pub fn get(&self, name: &str) -> Option<Arc<Oracle>> {
        self.victims.get(name).cloned()
    }

    /// The registered victim names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.victims.keys().cloned().collect()
    }

    /// Number of registered victims.
    pub fn len(&self) -> usize {
        self.victims.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.victims.is_empty()
    }
}
