//! The TCP server: accept loop, per-connection handlers, admission
//! control, and graceful drain.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xbar_core::oracle::QueryKey;
use xbar_obs::json::JsonValue;
use xbar_obs::metrics::SERVER_SCOPE;
use xbar_obs::names;
use xbar_runtime::jsonl::JsonlAppender;

use crate::coalesce::{CoalescePolicy, Coalescer, Job, WorkerPool};
use crate::metrics::{json_to_value, ServeMetrics, METRICS_RECORD_KIND};
use crate::protocol::{codes, Request, Response};
use crate::registry::VictimRegistry;
use crate::session::SessionManager;
use crate::Result;

/// Server tuning knobs.
#[derive(Clone)]
pub struct ServeConfig {
    /// Evaluation worker threads.
    pub workers: usize,
    /// Admission control: maximum concurrently attached sessions.
    pub max_sessions: usize,
    /// Backpressure: maximum queued-but-unevaluated query samples.
    pub max_inflight: usize,
    /// Cross-session batch coalescing policy.
    pub coalesce: CoalescePolicy,
    /// Session journal path (`None` = in-memory sessions only).
    pub journal: Option<PathBuf>,
    /// Observability sink for the server's threads (`None` = unobserved).
    pub collector: Option<Arc<dyn xbar_obs::Collector>>,
    /// Periodic live-metrics snapshot file (`None` = no snapshots). A
    /// [`METRICS_RECORD_KIND`] JSONL record is appended every
    /// [`ServeConfig::metrics_every`], plus a final one on drain.
    pub metrics: Option<PathBuf>,
    /// Interval between periodic metrics snapshots.
    pub metrics_every: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            max_sessions: 256,
            max_inflight: 4096,
            coalesce: CoalescePolicy::default(),
            journal: None,
            collector: None,
            metrics: None,
            metrics_every: Duration::from_secs(1),
        }
    }
}

struct Shared {
    registry: VictimRegistry,
    sessions: Mutex<SessionManager>,
    shutdown: AtomicBool,
    metrics: ServeMetrics,
}

impl Shared {
    /// Refreshes the point-in-time gauges and returns a coherent merged
    /// snapshot of the live metrics plane. Safe at any lifecycle point:
    /// during drain the session lock and shard locks still exist, so a
    /// scrape racing a shutdown sees a consistent (if final) picture.
    fn scrape(&self, coalescer: &Coalescer) -> xbar_obs::MetricsSnapshot {
        let attached = self
            .sessions
            .lock()
            .expect("sessions lock")
            .attached_count();
        self.metrics.refresh_gauges(
            attached,
            coalescer.inflight(),
            self.shutdown.load(Ordering::SeqCst),
        );
        self.metrics.registry().snapshot()
    }
}

/// A running campaign service.
///
/// Lifecycle: [`Server::start`] binds and spawns everything;
/// [`Server::shutdown`] (or a client `shutdown` op followed by
/// [`Server::run_until_shutdown`]) drains gracefully — the accept loop
/// stops, in-flight evaluation batches finish and are journaled, then
/// every thread is joined.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    pool: Option<WorkerPool>,
    accept_handle: Option<JoinHandle<()>>,
    metrics_handle: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop and worker pool.
    pub fn start(addr: &str, registry: VictimRegistry, config: ServeConfig) -> Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let metrics = ServeMetrics::new(config.workers);
        let mut sessions = match &config.journal {
            Some(path) => SessionManager::with_journal(config.max_sessions, path)?,
            None => SessionManager::new(config.max_sessions),
        };
        sessions.set_metrics_shard(metrics.server_shard());
        let shared = Arc::new(Shared {
            registry,
            sessions: Mutex::new(sessions),
            shutdown: AtomicBool::new(false),
            metrics: metrics.clone(),
        });
        let pool = WorkerPool::start(
            config.workers,
            config.coalesce,
            config.max_inflight,
            config.collector.clone(),
            Some(&metrics),
        );
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_handle = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            let conns = Arc::clone(&conns);
            let coalescer = pool.coalescer();
            let collector = config.collector.clone();
            std::thread::spawn(move || {
                accept_loop(&listener, &shared, &coalescer, &handlers, &conns, collector)
            })
        };

        let metrics_handle = match &config.metrics {
            Some(path) => {
                let appender = JsonlAppender::create(path)
                    .map_err(|e| crate::ServeError::Protocol(e.to_string()))?;
                let shared = Arc::clone(&shared);
                let coalescer = pool.coalescer();
                let every = config.metrics_every;
                Some(std::thread::spawn(move || {
                    snapshot_loop(appender, &shared, &coalescer, every)
                }))
            }
            None => None,
        };

        Ok(Server {
            addr: local_addr,
            shared,
            pool: Some(pool),
            accept_handle: Some(accept_handle),
            metrics_handle,
            handlers,
            conns,
        })
    }

    /// The bound address (the ephemeral port when started on `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until some client issues the `shutdown` op, then drains.
    pub fn run_until_shutdown(self) {
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(25));
        }
        self.drain();
    }

    /// Initiates and completes a graceful drain: stop accepting, let
    /// in-flight requests finish, join every thread.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.drain();
    }

    fn drain(mut self) {
        // 1. The accept loop polls the flag and exits.
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // 2. Unblock handler reads; handlers finish their current
        //    request (workers are still alive to answer it), detach
        //    their sessions, drop their coalescer clones, and exit.
        for stream in self.conns.lock().expect("conns lock").drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let handles: Vec<_> = self
            .handlers
            .lock()
            .expect("handlers lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        // 3. The snapshot thread sees the shutdown flag, writes its
        //    final snapshot, and drops its coalescer clone.
        if let Some(handle) = self.metrics_handle.take() {
            let _ = handle.join();
        }
        // 4. Every sender is gone: the workers drain the queue and exit.
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

/// Appends one [`METRICS_RECORD_KIND`] snapshot record to the metrics
/// file every `every`, polling the shutdown flag between ticks, and a
/// final record once drain begins. Records carry a monotone `seq` so
/// consumers can assert snapshot counts only ever grow.
fn snapshot_loop(
    mut appender: JsonlAppender,
    shared: &Shared,
    coalescer: &Coalescer,
    every: Duration,
) {
    let mut seq = 0u64;
    let write_snapshot = |seq: u64, appender: &mut JsonlAppender| {
        let snapshot = shared.scrape(coalescer);
        let mut record = JsonValue::object();
        record
            .push("kind", METRICS_RECORD_KIND)
            .push("seq", seq)
            .push("stats", snapshot.to_json());
        let _ = appender.write_line(&record.render());
    };
    loop {
        let deadline = Instant::now() + every;
        while Instant::now() < deadline {
            if shared.shutdown.load(Ordering::SeqCst) {
                write_snapshot(seq, &mut appender);
                return;
            }
            std::thread::sleep(Duration::from_millis(25).min(every));
        }
        write_snapshot(seq, &mut appender);
        seq += 1;
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    coalescer: &Coalescer,
    handlers: &Mutex<Vec<JoinHandle<()>>>,
    conns: &Arc<Mutex<Vec<TcpStream>>>,
    collector: Option<Arc<dyn xbar_obs::Collector>>,
) {
    // Connection ordinal, used only to spread handlers over the
    // metrics shard pool.
    let ordinal = AtomicUsize::new(0);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if let Ok(clone) = stream.try_clone() {
                    conns.lock().expect("conns lock").push(clone);
                }
                let shared = Arc::clone(shared);
                let coalescer = coalescer.clone();
                let collector = collector.clone();
                let shard = shared
                    .metrics
                    .handler_shard(ordinal.fetch_add(1, Ordering::Relaxed));
                let handle = std::thread::spawn(move || match collector {
                    Some(collector) => xbar_obs::with_scope(collector, None, || {
                        handle_connection(stream, &shared, &coalescer, &shard)
                    }),
                    None => handle_connection(stream, &shared, &coalescer, &shard),
                });
                handlers.lock().expect("handlers lock").push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    shared: &Shared,
    coalescer: &Coalescer,
    shard: &xbar_obs::MetricsShard,
) {
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    // Sessions this connection attached, detached when it goes away so
    // their admission slots free up (state persists for resume).
    let mut attached: Vec<String> = Vec::new();
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let response = {
            let _span = xbar_obs::span(names::SPAN_SERVE_REQUEST);
            match serde_json::from_str::<Request>(&line) {
                Ok(request) => handle_request(&request, shared, coalescer, &mut attached),
                Err(e) => Response::failure("?", codes::USAGE, format!("bad request: {e}")),
            }
        };
        record_request_metrics(shard, &response, started);
        let Ok(mut line) = serde_json::to_string(&response) else {
            break;
        };
        line.push('\n');
        if writer.write_all(line.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
    }
    let mut sessions = shared.sessions.lock().expect("sessions lock");
    for id in attached {
        sessions.detach(&id);
    }
}

/// Records the live-metrics view of one handled request: a request
/// counter, end-to-end latency, per-code rejection counters, and — for
/// successful queries — the per-victim query count. Attribution is by
/// the victim the request resolved to ([`SERVER_SCOPE`] when it never
/// resolved one: stats/shutdown ops, usage errors, unknown sessions).
fn record_request_metrics(shard: &xbar_obs::MetricsShard, response: &Response, started: Instant) {
    let victim = response
        .status
        .as_ref()
        .map_or(SERVER_SCOPE, |status| status.victim.as_str());
    shard.counter_add(victim, names::SERVE_REQUESTS, 1);
    shard.record(
        victim,
        names::SERVE_REQUEST_NS,
        started.elapsed().as_nanos() as u64,
    );
    if response.ok {
        if response.op == "query" {
            let queries = response.records.as_ref().map_or(0, Vec::len) as u64;
            shard.counter_add(victim, names::SERVE_QUERIES, queries);
        }
    } else if let Some(code) = &response.code {
        let name = format!("{}{code}", names::SERVE_REJECT_PREFIX);
        shard.counter_add(victim, &name, 1);
    }
}

fn handle_request(
    request: &Request,
    shared: &Shared,
    coalescer: &Coalescer,
    attached: &mut Vec<String>,
) -> Response {
    let op = request.op.as_str();
    let draining = shared.shutdown.load(Ordering::SeqCst);
    match op {
        // `stats` is read-only and consumes no budget or admission
        // slot, so it is answered unconditionally — before the drain
        // check (operators scrape *during* drain to watch it finish)
        // and regardless of session-table occupancy.
        "stats" => {
            let snapshot = shared.scrape(coalescer);
            match request.format.as_deref() {
                Some("prom") => Response::success(op).with_text(snapshot.to_prometheus()),
                None | Some("json") => {
                    Response::success(op).with_stats(json_to_value(&snapshot.to_json()))
                }
                Some(other) => Response::failure(
                    op,
                    codes::USAGE,
                    format!("unknown stats format {other:?} (expected \"json\" or \"prom\")"),
                ),
            }
        }
        "hello" if draining => Response::failure(op, codes::SHUTTING_DOWN, "server is draining"),
        "query" if draining => Response::failure(op, codes::SHUTTING_DOWN, "server is draining"),
        "hello" => {
            let Some(id) = request.session.as_deref() else {
                return Response::failure(op, codes::USAGE, "hello requires a session id");
            };
            let opened = shared.sessions.lock().expect("sessions lock").open(
                id,
                request.victim.as_deref(),
                request.seed,
                request.budget,
                &shared.registry,
            );
            match opened {
                Ok(status) => {
                    if !attached.iter().any(|a| a == id) {
                        attached.push(id.to_string());
                    }
                    Response::success(op).with_status(status)
                }
                Err(reject) => {
                    if reject.code == codes::SESSION_TABLE_FULL {
                        xbar_obs::count(names::SERVE_ADMISSION_REJECT, 1);
                    }
                    Response::failure(op, reject.code, reject.message)
                }
            }
        }
        "query" => handle_query(request, shared, coalescer),
        "close" => {
            let Some(id) = request.session.as_deref() else {
                return Response::failure(op, codes::USAGE, "close requires a session id");
            };
            attached.retain(|a| a != id);
            match shared.sessions.lock().expect("sessions lock").detach(id) {
                Some(status) => Response::success(op).with_status(status),
                None => Response::failure(op, codes::UNKNOWN_SESSION, format!("no session {id:?}")),
            }
        }
        "shutdown" => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::success(op)
        }
        other => Response::failure(other, codes::USAGE, format!("unknown op {other:?}")),
    }
}

fn handle_query(request: &Request, shared: &Shared, coalescer: &Coalescer) -> Response {
    let op = "query";
    let Some(id) = request.session.as_deref() else {
        return Response::failure(op, codes::USAGE, "query requires a session id");
    };
    let Some(inputs) = request.inputs.as_ref().filter(|inputs| !inputs.is_empty()) else {
        return Response::failure(op, codes::USAGE, "query requires non-empty inputs");
    };
    let count = inputs.len() as u64;

    // Reservation and enqueue happen under the session lock so a
    // session's query indices are assigned exactly once, in order, even
    // if two connections drive the same session.
    let reply_rx: mpsc::Receiver<std::result::Result<_, String>>;
    let status;
    {
        let mut sessions = shared.sessions.lock().expect("sessions lock");
        let Some(current) = sessions.status(id) else {
            return Response::failure(op, codes::UNKNOWN_SESSION, format!("no session {id:?}"));
        };
        let Some(oracle) = shared.registry.get(&current.victim) else {
            return Response::failure(
                op,
                codes::UNKNOWN_VICTIM,
                format!("victim {:?} is not hosted here", current.victim),
            );
        };
        let dim = oracle.num_inputs();
        if let Some(bad) = inputs.iter().find(|u| u.len() != dim) {
            return Response::failure(
                op,
                codes::USAGE,
                format!("input has {} elements, victim takes {dim}", bad.len()),
            );
        }
        status = match sessions.reserve(id, count) {
            Ok(status) => status,
            Err(reject) => return Response::failure(op, reject.code, reject.message),
        };
        let base = status.used - count;
        let keys: Vec<QueryKey> = (0..count)
            .map(|i| QueryKey::new(status.seed, base + i))
            .collect();
        let (reply_tx, rx) = mpsc::channel();
        reply_rx = rx;
        let job = Job {
            oracle,
            victim: current.victim.clone(),
            inputs: inputs.clone(),
            keys,
            reply: reply_tx,
        };
        if coalescer.enqueue(job).is_err() {
            // Nothing was (or will be) evaluated: roll the reservation
            // back so backpressure consumes no budget.
            sessions.unreserve(id, count);
            return Response::failure(op, codes::BUSY, "evaluation queue is full, retry");
        }
    }

    match reply_rx.recv() {
        Ok(Ok(observations)) => {
            let base = status.used - count;
            let records = observations
                .into_iter()
                .enumerate()
                .map(|(i, observation)| xbar_core::oracle::QueryRecord {
                    index: base + i as u64,
                    observation,
                })
                .collect();
            Response::success(op)
                .with_status(status)
                .with_records(records)
        }
        Ok(Err(message)) => Response::failure(op, codes::INTERNAL, message),
        Err(_) => Response::failure(op, codes::SHUTTING_DOWN, "evaluation aborted by shutdown"),
    }
}
