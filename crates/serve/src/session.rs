//! Session accounting: budgets, query indices, and crash-tolerant
//! persistence.
//!
//! Each session owns a noise seed and a monotonically increasing global
//! query index; queries are *reserved* here (all-or-nothing against the
//! budget, exactly like [`xbar_core::oracle::Oracle::query_batch`])
//! before they are enqueued for evaluation, so the index a query gets is
//! independent of evaluation order under coalescing.
//!
//! Persistence reuses the runtime's crash-tolerant JSONL machinery
//! ([`JsonlAppender`] / [`read_jsonl`]): one [`SessionRecord`] is
//! appended per state change, the latest record per session wins on
//! load, and a torn final line (killed server) is repaired on reopen.
//! Reserved-but-unanswered queries count as consumed — a reconnecting
//! client resumes *after* them, which keeps every index it ever saw
//! stable.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use xbar_obs::MetricsShard;
use xbar_runtime::jsonl::{read_jsonl, JsonlAppender};

use crate::protocol::{codes, SessionStatus};
use crate::registry::VictimRegistry;
use crate::{Result, ServeError};

/// The `kind` tag stamped on every persisted [`SessionRecord`].
pub const SESSION_RECORD_KIND: &str = "xbar-serve-session";

/// One persisted session-state line: a full snapshot (not a delta), so
/// the last record per session id is the whole truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// Always [`SESSION_RECORD_KIND`].
    pub kind: String,
    /// Session id.
    pub session: String,
    /// Victim the session is bound to.
    pub victim: String,
    /// The session's noise seed.
    pub seed: u64,
    /// Query budget (`None` = unlimited).
    pub budget: Option<u64>,
    /// Queries reserved so far — the next query index.
    pub used: u64,
}

/// A request the session manager refused, with its wire error code.
#[derive(Debug, Clone, PartialEq)]
pub struct Reject {
    /// One of [`codes`].
    pub code: &'static str,
    /// Human-readable reason.
    pub message: String,
}

impl Reject {
    fn new(code: &'static str, message: impl Into<String>) -> Self {
        Reject {
            code,
            message: message.into(),
        }
    }
}

#[derive(Debug, Clone)]
struct SessionState {
    victim: String,
    seed: u64,
    budget: Option<u64>,
    used: u64,
}

impl SessionState {
    fn status(&self, id: &str) -> SessionStatus {
        SessionStatus {
            session: id.to_string(),
            victim: self.victim.clone(),
            seed: self.seed,
            budget: self.budget,
            used: self.used,
        }
    }
}

/// Session table with admission control and optional persistence.
///
/// *Attached* sessions have a live connection and count against
/// `max_sessions`; *detached* sessions (closed, disconnected, or loaded
/// from the journal) keep their accounting and re-attach on the next
/// `hello` with the same id.
pub struct SessionManager {
    max_sessions: usize,
    attached: HashMap<String, SessionState>,
    detached: HashMap<String, SessionState>,
    journal: Option<JsonlAppender>,
    metrics: Option<Arc<MetricsShard>>,
}

impl SessionManager {
    /// An in-memory manager admitting up to `max_sessions` attached
    /// sessions.
    pub fn new(max_sessions: usize) -> Self {
        SessionManager {
            max_sessions,
            attached: HashMap::new(),
            detached: HashMap::new(),
            journal: None,
            metrics: None,
        }
    }

    /// Installs a live-metrics shard: every durable journal write is
    /// timed into `serve.journal_write_ns` under the session's victim.
    /// Callers already serialise on the session-table lock, so one
    /// shared shard adds no contention.
    pub fn set_metrics_shard(&mut self, shard: Arc<MetricsShard>) {
        self.metrics = Some(shard);
    }

    /// A persistent manager journaling to `path`. An existing journal
    /// is loaded first (last record per session wins, torn tail
    /// repaired) and its sessions start detached, ready to resume.
    pub fn with_journal(max_sessions: usize, path: &Path) -> Result<Self> {
        let mut manager = SessionManager::new(max_sessions);
        let journal = if path.exists() {
            let records: Vec<SessionRecord> =
                read_jsonl(path).map_err(|e| ServeError::Protocol(e.to_string()))?;
            for record in records {
                if record.kind != SESSION_RECORD_KIND {
                    continue;
                }
                manager.detached.insert(
                    record.session,
                    SessionState {
                        victim: record.victim,
                        seed: record.seed,
                        budget: record.budget,
                        used: record.used,
                    },
                );
            }
            JsonlAppender::append(path, |tail| {
                serde_json::from_str::<SessionRecord>(tail)
                    .map(|r| r.kind == SESSION_RECORD_KIND)
                    .unwrap_or(false)
            })
            .map_err(|e| ServeError::Protocol(e.to_string()))?
        } else {
            JsonlAppender::create(path).map_err(|e| ServeError::Protocol(e.to_string()))?
        };
        manager.journal = Some(journal);
        Ok(manager)
    }

    /// Number of currently attached sessions.
    pub fn attached_count(&self) -> usize {
        self.attached.len()
    }

    /// Opens or resumes the session `id` (the `hello` op).
    ///
    /// A new session requires `victim` (present in `registry`) and
    /// `seed`. A resume may omit them; values it does supply must match
    /// the stored state ([`codes::CONFLICT`] otherwise — the session's
    /// keying is immutable precisely so its result stream stays
    /// bit-identical across reconnects).
    pub fn open(
        &mut self,
        id: &str,
        victim: Option<&str>,
        seed: Option<u64>,
        budget: Option<u64>,
        registry: &VictimRegistry,
    ) -> std::result::Result<SessionStatus, Reject> {
        if let Some(state) = self.attached.get(id).or_else(|| self.detached.get(id)) {
            let state = state.clone();
            if victim.is_some_and(|v| v != state.victim)
                || seed.is_some_and(|s| s != state.seed)
                || (budget.is_some() && budget != state.budget)
            {
                return Err(Reject::new(
                    codes::CONFLICT,
                    format!("session {id:?} exists with different victim/seed/budget"),
                ));
            }
            if !self.attached.contains_key(id) {
                if self.attached.len() >= self.max_sessions {
                    return Err(Reject::new(
                        codes::SESSION_TABLE_FULL,
                        format!("{} sessions already attached", self.max_sessions),
                    ));
                }
                let state = self.detached.remove(id).expect("checked above");
                self.attached.insert(id.to_string(), state);
            }
            return Ok(self.attached[id].status(id));
        }

        let victim = victim
            .ok_or_else(|| Reject::new(codes::USAGE, "new session requires a victim name"))?;
        let seed =
            seed.ok_or_else(|| Reject::new(codes::USAGE, "new session requires a noise seed"))?;
        if registry.get(victim).is_none() {
            return Err(Reject::new(
                codes::UNKNOWN_VICTIM,
                format!("no victim named {victim:?}"),
            ));
        }
        if self.attached.len() >= self.max_sessions {
            return Err(Reject::new(
                codes::SESSION_TABLE_FULL,
                format!("{} sessions already attached", self.max_sessions),
            ));
        }
        let state = SessionState {
            victim: victim.to_string(),
            seed,
            budget,
            used: 0,
        };
        self.persist(id, &state)?;
        let status = state.status(id);
        self.attached.insert(id.to_string(), state);
        xbar_obs::count(xbar_obs::names::SERVE_SESSIONS, 1);
        Ok(status)
    }

    /// Reserves `count` queries against session `id`'s budget —
    /// all-or-nothing — and returns the session's status *after* the
    /// reservation (so `status.used - count` is the batch's base query
    /// index).
    ///
    /// The reservation is journaled before it is visible, which is what
    /// makes resume exact: a server killed between journal and reply
    /// resumes with those indices already consumed, never re-issuing an
    /// index the client might have seen.
    pub fn reserve(&mut self, id: &str, count: u64) -> std::result::Result<SessionStatus, Reject> {
        let state = self
            .attached
            .get(id)
            .ok_or_else(|| Reject::new(codes::UNKNOWN_SESSION, format!("no session {id:?}")))?;
        if let Some(budget) = state.budget {
            let remaining = budget.saturating_sub(state.used);
            if count > remaining {
                return Err(Reject::new(
                    codes::BUDGET_EXHAUSTED,
                    format!("{count} queries requested, {remaining} of {budget} remaining"),
                ));
            }
        }
        let mut updated = state.clone();
        updated.used += count;
        self.persist(id, &updated)?;
        let status = updated.status(id);
        self.attached.insert(id.to_string(), updated);
        Ok(status)
    }

    /// The current accounting of the *attached* session `id`.
    pub fn status(&self, id: &str) -> Option<SessionStatus> {
        self.attached.get(id).map(|state| state.status(id))
    }

    /// Rolls back a reservation whose job was never enqueued (the
    /// backpressure path): `count` queries return to the budget and the
    /// index counter rewinds. Only sound because the caller guarantees
    /// no evaluation — and no client-visible index — ever existed for
    /// them.
    pub fn unreserve(&mut self, id: &str, count: u64) {
        if let Some(state) = self.attached.get(id) {
            let mut updated = state.clone();
            updated.used = updated.used.saturating_sub(count);
            // A failed rollback journal write leaves `used` too high on
            // resume — indices are skipped, never duplicated, so the
            // bit-identity contract survives; ignore the error.
            let _ = self.persist(id, &updated);
            self.attached.insert(id.to_string(), updated);
        }
    }

    /// Detaches session `id` (close or connection loss), freeing its
    /// admission slot but keeping its accounting for resume.
    pub fn detach(&mut self, id: &str) -> Option<SessionStatus> {
        let state = self.attached.remove(id)?;
        let status = state.status(id);
        self.detached.insert(id.to_string(), state);
        Some(status)
    }

    fn persist(&mut self, id: &str, state: &SessionState) -> std::result::Result<(), Reject> {
        if let Some(journal) = &mut self.journal {
            let record = SessionRecord {
                kind: SESSION_RECORD_KIND.to_string(),
                session: id.to_string(),
                victim: state.victim.clone(),
                seed: state.seed,
                budget: state.budget,
                used: state.used,
            };
            let started = Instant::now();
            let written = journal.write(&record);
            if let Some(shard) = &self.metrics {
                shard.record(
                    &state.victim,
                    xbar_obs::names::SERVE_JOURNAL_WRITE_NS,
                    started.elapsed().as_nanos() as u64,
                );
            }
            written.map_err(|e| Reject::new(codes::INTERNAL, format!("journal write: {e}")))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_path(name: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("xbar_serve_{}_{}", name, std::process::id()));
        path
    }

    fn registry() -> VictimRegistry {
        // Session-manager tests never evaluate; an empty registry plus
        // `open` calls that resume (or a stub victim) would be enough,
        // but building one real victim keeps `open`'s registry check
        // honest.
        let mut registry = VictimRegistry::new();
        let net = xbar_nn::network::SingleLayerNet::from_weights(
            xbar_linalg::Matrix::from_rows(&[&[1.0, -0.5]]),
            xbar_nn::activation::Activation::Identity,
        );
        let oracle =
            xbar_core::oracle::Oracle::new(net, &xbar_core::oracle::OracleConfig::ideal(), 3)
                .unwrap();
        registry.insert("toy", oracle).unwrap();
        registry
    }

    #[test]
    fn budget_is_all_or_nothing_and_indices_are_contiguous() {
        let registry = registry();
        let mut mgr = SessionManager::new(4);
        mgr.open("s1", Some("toy"), Some(7), Some(5), &registry)
            .unwrap();
        let status = mgr.reserve("s1", 3).unwrap();
        assert_eq!(status.used, 3);
        let err = mgr.reserve("s1", 3).unwrap_err();
        assert_eq!(err.code, codes::BUDGET_EXHAUSTED);
        // Nothing consumed by the failed reservation.
        let status = mgr.reserve("s1", 2).unwrap();
        assert_eq!(status.used, 5);
    }

    #[test]
    fn admission_counts_attached_sessions_only() {
        let registry = registry();
        let mut mgr = SessionManager::new(1);
        mgr.open("s1", Some("toy"), Some(1), None, &registry)
            .unwrap();
        let err = mgr
            .open("s2", Some("toy"), Some(2), None, &registry)
            .unwrap_err();
        assert_eq!(err.code, codes::SESSION_TABLE_FULL);
        // Re-attaching an attached session is idempotent.
        mgr.open("s1", None, None, None, &registry).unwrap();
        // Detaching frees the slot; the detached session resumes later.
        mgr.detach("s1").unwrap();
        mgr.open("s2", Some("toy"), Some(2), None, &registry)
            .unwrap();
        let err = mgr.open("s1", None, None, None, &registry).unwrap_err();
        assert_eq!(err.code, codes::SESSION_TABLE_FULL);
        mgr.detach("s2").unwrap();
        let resumed = mgr.open("s1", None, None, None, &registry).unwrap();
        assert_eq!(resumed.seed, 1);
    }

    #[test]
    fn resume_conflicts_are_rejected() {
        let registry = registry();
        let mut mgr = SessionManager::new(4);
        mgr.open("s1", Some("toy"), Some(7), Some(10), &registry)
            .unwrap();
        let err = mgr
            .open("s1", Some("toy"), Some(8), None, &registry)
            .unwrap_err();
        assert_eq!(err.code, codes::CONFLICT);
        let err = mgr
            .open("s1", Some("toy"), Some(7), Some(11), &registry)
            .unwrap_err();
        assert_eq!(err.code, codes::CONFLICT);
    }

    #[test]
    fn journal_roundtrip_resumes_budget_and_index() {
        let registry = registry();
        let path = test_path("journal_roundtrip");
        {
            let mut mgr = SessionManager::with_journal(4, &path).unwrap();
            mgr.open("s1", Some("toy"), Some(7), Some(10), &registry)
                .unwrap();
            mgr.reserve("s1", 4).unwrap();
        }
        // A new manager (server restart) resumes the exact state.
        let mut mgr = SessionManager::with_journal(4, &path).unwrap();
        let status = mgr.open("s1", None, None, None, &registry).unwrap();
        assert_eq!(status.victim, "toy");
        assert_eq!(status.seed, 7);
        assert_eq!(status.budget, Some(10));
        assert_eq!(status.used, 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_tolerates_and_repairs_a_torn_tail() {
        use std::io::Write;
        let registry = registry();
        let path = test_path("journal_torn");
        {
            let mut mgr = SessionManager::with_journal(4, &path).unwrap();
            mgr.open("s1", Some("toy"), Some(7), Some(10), &registry)
                .unwrap();
            mgr.reserve("s1", 4).unwrap();
        }
        // Kill mid-write: a torn fragment after the last good record.
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        file.write_all(b"{\"kind\":\"xbar-serve-session\",\"sess")
            .unwrap();
        drop(file);

        let mut mgr = SessionManager::with_journal(4, &path).unwrap();
        let status = mgr.open("s1", None, None, None, &registry).unwrap();
        assert_eq!(status.used, 4);
        // The repaired journal keeps appending cleanly.
        mgr.reserve("s1", 1).unwrap();
        drop(mgr);
        let mut mgr = SessionManager::with_journal(4, &path).unwrap();
        let status = mgr.open("s1", None, None, None, &registry).unwrap();
        assert_eq!(status.used, 5);
        std::fs::remove_file(&path).ok();
    }
}
