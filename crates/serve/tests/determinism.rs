//! The serve-side extension of the batch/thread/backend invariance
//! contract: a session's `QueryRecord` stream is bit-identical whether
//! it is computed directly on the oracle, served alone, or served
//! interleaved with seven other sessions whose queries share coalesced
//! evaluation batches — at any worker-thread count.

use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess, QueryRecord};
use xbar_crossbar::backend::BackendKind;
use xbar_crossbar::device::DeviceModel;
use xbar_crossbar::power::PowerModel;
use xbar_faults::{FaultKey, TransientInjection, TransientSpec};
use xbar_linalg::Matrix;
use xbar_nn::activation::Activation;
use xbar_nn::network::SingleLayerNet;
use xbar_serve::coalesce::CoalescePolicy;
use xbar_serve::{Client, ServeConfig, Server, VictimRegistry};

const SESSIONS: usize = 8;
const QUERIES_PER_SESSION: usize = 12;
const INPUT_DIM: usize = 4;

/// A victim with every noise source live: noisy power, noisy reads,
/// per-query transients — the hardest case for coalescing to get right.
fn victim() -> Oracle {
    let net = SingleLayerNet::from_weights(
        Matrix::from_rows(&[
            &[1.0, -0.5, 0.2, 0.8],
            &[0.25, 0.5, -1.0, 0.1],
            &[-0.3, 0.9, 0.4, -0.7],
        ]),
        Activation::Identity,
    );
    let device = DeviceModel {
        g_min: 0.05,
        g_max: 1.0,
        read_sigma: 0.01,
        ..DeviceModel::ideal()
    };
    let cfg = OracleConfig::ideal()
        .with_access(OutputAccess::Raw)
        .with_device(device)
        .with_backend(BackendKind::Blocked)
        .with_power(PowerModel::default().with_noise(0.05))
        .with_transients(TransientInjection::new(
            TransientSpec::none()
                .with_flip_rate(0.05)
                .with_jitter_sigma(0.02),
            FaultKey::new(91, 2),
        ));
    Oracle::new(net, &cfg, 4242).unwrap()
}

fn session_seed(s: usize) -> u64 {
    1000 + s as u64
}

/// Session `s`'s deterministic input stream.
fn session_inputs(s: usize) -> Vec<Vec<f64>> {
    (0..QUERIES_PER_SESSION)
        .map(|q| {
            (0..INPUT_DIM)
                .map(|j| (((s * 31 + q * 7 + j) as f64) * 0.37).sin())
                .collect()
        })
        .collect()
}

/// Ground truth: the session querying its own private view directly, no
/// server involved.
fn direct_records(deployed: &Oracle, s: usize) -> Vec<QueryRecord> {
    let mut view = deployed.session_view(session_seed(s), None);
    let inputs = session_inputs(s);
    let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
    view.query_batch(&refs).unwrap()
}

fn server(workers: usize, coalesce: bool) -> Server {
    let mut registry = VictimRegistry::new();
    registry.insert("victim", victim()).unwrap();
    let config = ServeConfig {
        workers,
        coalesce: CoalescePolicy {
            enabled: coalesce,
            ..CoalescePolicy::default()
        },
        ..ServeConfig::default()
    };
    Server::start("127.0.0.1:0", registry, config).unwrap()
}

/// Drives session `s` over its own connection in uneven batch splits,
/// returning the served records.
fn drive_session(addr: std::net::SocketAddr, s: usize) -> Vec<QueryRecord> {
    let mut client = Client::connect(addr).unwrap();
    let id = format!("session-{s}");
    let status = client
        .hello(&id, Some("victim"), Some(session_seed(s)), None)
        .unwrap();
    assert_eq!(status.used, 0);
    let inputs = session_inputs(s);
    let mut records = Vec::new();
    // Per-session batch splits differ (1, then 3s, then the rest) so
    // coalesced batches mix sessions at misaligned offsets.
    let splits = [1usize, 3, 3, QUERIES_PER_SESSION - 7];
    let mut offset = 0;
    for &take in &splits {
        records.extend(client.query(&id, &inputs[offset..offset + take]).unwrap());
        offset += take;
    }
    assert_eq!(offset, QUERIES_PER_SESSION);
    client.close(&id).unwrap();
    records
}

#[test]
fn solo_session_matches_direct_evaluation_bit_for_bit() {
    let deployed = victim();
    let server = server(2, true);
    let addr = server.local_addr();
    for s in [0, 3] {
        let served = drive_session(addr, s);
        assert_eq!(served, direct_records(&deployed, s), "session {s}");
    }
    server.shutdown();
}

#[test]
fn interleaved_sessions_match_solo_at_any_worker_count() {
    let deployed = victim();
    let baselines: Vec<Vec<QueryRecord>> = (0..SESSIONS)
        .map(|s| direct_records(&deployed, s))
        .collect();

    for workers in [1usize, 4, 8] {
        let server = server(workers, true);
        let addr = server.local_addr();
        let served: Vec<Vec<QueryRecord>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..SESSIONS)
                .map(|s| scope.spawn(move || drive_session(addr, s)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (s, (got, want)) in served.iter().zip(&baselines).enumerate() {
            assert_eq!(
                got, want,
                "session {s} diverged under load at {workers} workers"
            );
        }
        server.shutdown();
    }
}

#[test]
fn coalescing_off_is_bit_identical_too() {
    let deployed = victim();
    let baselines: Vec<Vec<QueryRecord>> = (0..SESSIONS)
        .map(|s| direct_records(&deployed, s))
        .collect();
    let server = server(4, false);
    let addr = server.local_addr();
    let served: Vec<Vec<QueryRecord>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|s| scope.spawn(move || drive_session(addr, s)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (s, (got, want)) in served.iter().zip(&baselines).enumerate() {
        assert_eq!(got, want, "session {s} diverged with coalescing off");
    }
    server.shutdown();
}

#[test]
fn shared_hardware_is_actually_shared() {
    // Two sessions with the same seed see the same noise; two sessions
    // with different seeds see different noise on the same hardware —
    // the keying, not the victim, is what separates tenants.
    let server = server(2, true);
    let addr = server.local_addr();
    let inputs = session_inputs(0);

    let mut a = Client::connect(addr).unwrap();
    a.hello("a", Some("victim"), Some(5), None).unwrap();
    let ra = a.query("a", &inputs[..2]).unwrap();

    let mut b = Client::connect(addr).unwrap();
    b.hello("b", Some("victim"), Some(5), None).unwrap();
    let rb = b.query("b", &inputs[..2]).unwrap();

    let mut c = Client::connect(addr).unwrap();
    c.hello("c", Some("victim"), Some(6), None).unwrap();
    let rc = c.query("c", &inputs[..2]).unwrap();

    assert_eq!(ra, rb, "same seed, same queries, same records");
    assert_ne!(ra, rc, "different seeds must draw different noise");
    server.shutdown();
}
