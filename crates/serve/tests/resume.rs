//! Journal-backed session resume: a session killed mid-budget
//! reconnects — possibly to a *restarted* server — and its budget
//! remainder and global query index continue exactly, with the served
//! records still bit-identical to the uninterrupted stream. Includes
//! the torn-tail repair path: garbage after the journal's last complete
//! record (a server killed mid-write) must be dropped, not merged.

use std::io::Write;
use std::path::{Path, PathBuf};

use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess, QueryRecord};
use xbar_crossbar::device::DeviceModel;
use xbar_crossbar::power::PowerModel;
use xbar_linalg::Matrix;
use xbar_nn::activation::Activation;
use xbar_nn::network::SingleLayerNet;
use xbar_serve::{Client, ServeConfig, Server, VictimRegistry};

const BUDGET: u64 = 10;
const SEED: u64 = 77;

fn victim() -> Oracle {
    let net = SingleLayerNet::from_weights(
        Matrix::from_rows(&[&[1.0, -0.5, 0.2], &[0.25, 0.5, -1.0]]),
        Activation::Identity,
    );
    let device = DeviceModel {
        read_sigma: 0.01,
        ..DeviceModel::ideal()
    };
    let cfg = OracleConfig::ideal()
        .with_access(OutputAccess::Raw)
        .with_device(device)
        .with_power(PowerModel::default().with_noise(0.05));
    Oracle::new(net, &cfg, 909).unwrap()
}

fn inputs() -> Vec<Vec<f64>> {
    (0..BUDGET as usize)
        .map(|q| (0..3).map(|j| ((q * 3 + j) as f64 * 0.41).cos()).collect())
        .collect()
}

fn start_server(journal: &Path) -> Server {
    let mut registry = VictimRegistry::new();
    registry.insert("victim", victim()).unwrap();
    let config = ServeConfig {
        workers: 2,
        journal: Some(journal.to_path_buf()),
        ..ServeConfig::default()
    };
    Server::start("127.0.0.1:0", registry, config).unwrap()
}

fn temp_journal(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("xbar_serve_resume_{}_{}", name, std::process::id()));
    path
}

#[test]
fn killed_session_resumes_budget_and_index_exactly() {
    let journal = temp_journal("kill");
    std::fs::remove_file(&journal).ok();
    let all_inputs = inputs();

    // The uninterrupted stream, straight off the oracle: what the
    // session would have seen had nothing died.
    let uninterrupted: Vec<QueryRecord> = {
        let mut view = victim().session_view(SEED, Some(BUDGET as usize));
        let refs: Vec<&[f64]> = all_inputs.iter().map(Vec::as_slice).collect();
        view.query_batch(&refs).unwrap()
    };

    // Phase 1: consume 4 of 10, then die without closing (the server
    // goes down with the connection still attached).
    let before: Vec<QueryRecord> = {
        let server = start_server(&journal);
        let mut client = Client::connect(server.local_addr()).unwrap();
        let status = client
            .hello("s1", Some("victim"), Some(SEED), Some(BUDGET))
            .unwrap();
        assert_eq!(status.used, 0);
        let records = client.query("s1", &all_inputs[..4]).unwrap();
        server.shutdown();
        records
    };
    assert_eq!(before, uninterrupted[..4], "pre-kill records diverged");

    // Simulate a kill mid-journal-write: a torn fragment after the last
    // complete record.
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&journal)
        .unwrap();
    file.write_all(b"{\"kind\":\"xbar-serve-session\",\"session\":\"s1\",\"vic")
        .unwrap();
    drop(file);

    // Phase 2: a fresh server on the same journal. The session resumes
    // with 6 of 10 remaining at index 4, and the remaining records are
    // bit-identical to the uninterrupted stream.
    let server = start_server(&journal);
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Resume needs no victim/seed/budget — the journal has them.
    let status = client.hello("s1", None, None, None).unwrap();
    assert_eq!(status.victim, "victim");
    assert_eq!(status.seed, SEED);
    assert_eq!(status.budget, Some(BUDGET));
    assert_eq!(status.used, 4, "journal lost the reservation");

    // Over-budget batch is all-or-nothing: nothing consumed.
    let err = client.query("s1", &all_inputs[3..]).unwrap_err();
    assert!(err.to_string().contains("budget_exhausted"), "{err}");

    let after = client.query("s1", &all_inputs[4..]).unwrap();
    assert_eq!(after, uninterrupted[4..], "post-resume records diverged");

    // Budget is now spent to the last query.
    let err = client.query("s1", &all_inputs[..1]).unwrap_err();
    assert!(err.to_string().contains("budget_exhausted"), "{err}");
    server.shutdown();
    std::fs::remove_file(&journal).ok();
}

#[test]
fn resume_conflicts_and_reattach_within_one_server() {
    let journal = temp_journal("reattach");
    std::fs::remove_file(&journal).ok();
    let all_inputs = inputs();
    let server = start_server(&journal);
    let addr = server.local_addr();

    {
        let mut client = Client::connect(addr).unwrap();
        client
            .hello("s1", Some("victim"), Some(SEED), Some(BUDGET))
            .unwrap();
        client.query("s1", &all_inputs[..2]).unwrap();
        client.close("s1").unwrap();
    }
    // Reconnect on a new connection, same server: state carried over.
    let mut client = Client::connect(addr).unwrap();
    let status = client.hello("s1", None, None, None).unwrap();
    assert_eq!(status.used, 2);
    // A contradictory resume is refused.
    let err = client
        .hello("s1", Some("victim"), Some(SEED + 1), None)
        .unwrap_err();
    assert!(err.to_string().contains("conflict"), "{err}");
    server.shutdown();
    std::fs::remove_file(&journal).ok();
}
