//! End-to-end tests for the live metrics plane and the `stats` op.
//!
//! Three contracts:
//!
//! 1. **Unconditional admission** — `stats` is answered when the
//!    session table is full and while the server drains (it is
//!    read-only and consumes no budget), so operators never lose
//!    visibility exactly when they need it most.
//! 2. **Worker-count invariance** — a fixed scripted workload produces
//!    snapshots whose *deterministic* fields (request / query /
//!    rejection counters, histogram totals, and — with coalescing off —
//!    occupancy bucket counts) are identical at 1, 4, and 8 workers,
//!    because shard merging is commutative. Timing fields are only
//!    checked for well-formedness.
//! 3. **Snapshot shape** — quantiles sit inside `[min, max]`, bucket
//!    totals equal histogram counts, and coalescing-enabled runs
//!    conserve `serve.flush_occupancy`'s sum (= total queries).

use std::collections::BTreeMap;

use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_crossbar::backend::BackendKind;
use xbar_crossbar::power::PowerModel;
use xbar_linalg::Matrix;
use xbar_nn::activation::Activation;
use xbar_nn::network::SingleLayerNet;
use xbar_serve::coalesce::CoalescePolicy;
use xbar_serve::{Client, Request, ServeConfig, Server, VictimRegistry};

const INPUT_DIM: usize = 3;

fn victim() -> Oracle {
    let net = SingleLayerNet::from_weights(
        Matrix::from_rows(&[&[1.0, -0.5, 0.2], &[0.25, 0.5, -1.0]]),
        Activation::Identity,
    );
    let cfg = OracleConfig::ideal()
        .with_access(OutputAccess::Raw)
        .with_backend(BackendKind::Blocked)
        .with_power(PowerModel::default().with_noise(0.05));
    Oracle::new(net, &cfg, 4242).unwrap()
}

fn registry() -> VictimRegistry {
    let mut registry = VictimRegistry::new();
    registry.insert("toy", victim()).unwrap();
    registry
}

fn inputs(n: usize, salt: u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|q| {
            (0..INPUT_DIM)
                .map(|d| ((salt * 31 + q as u64 * 7 + d as u64) % 17) as f64 / 17.0 - 0.5)
                .collect()
        })
        .collect()
}

// --- small JSON helpers over the scraped serde::Value snapshot ---

fn victim_section<'a>(stats: &'a serde::Value, victim: &str) -> &'a serde::Value {
    stats
        .get("victims")
        .and_then(|v| v.get(victim))
        .unwrap_or_else(|| panic!("no victim section {victim:?} in {stats:?}"))
}

fn counter(stats: &serde::Value, victim: &str, name: &str) -> u64 {
    match victim_section(stats, victim)
        .get("counters")
        .and_then(|c| c.get(name))
    {
        Some(serde::Value::U64(n)) => *n,
        None => 0,
        other => panic!("counter {victim}/{name} is {other:?}"),
    }
}

fn histogram<'a>(stats: &'a serde::Value, victim: &str, name: &str) -> &'a serde::Value {
    victim_section(stats, victim)
        .get("histograms")
        .and_then(|h| h.get(name))
        .unwrap_or_else(|| panic!("no histogram {victim}/{name}"))
}

fn field_u64(value: &serde::Value, key: &str) -> u64 {
    match value.get(key) {
        Some(serde::Value::U64(n)) => *n,
        other => panic!("field {key} is {other:?}"),
    }
}

fn field_f64(value: &serde::Value, key: &str) -> f64 {
    match value.get(key) {
        Some(serde::Value::F64(x)) => *x,
        Some(serde::Value::U64(n)) => *n as f64,
        other => panic!("field {key} is {other:?}"),
    }
}

/// Asserts a histogram snapshot is internally consistent: quantile
/// estimates inside `[min, max]` and monotone in `q`, bucket counts
/// summing to `count`.
fn assert_well_formed_histogram(h: &serde::Value) {
    let count = field_u64(h, "count");
    let min = field_u64(h, "min") as f64;
    let max = field_u64(h, "max") as f64;
    let (p50, p90, p99, p999) = (
        field_f64(h, "p50"),
        field_f64(h, "p90"),
        field_f64(h, "p99"),
        field_f64(h, "p999"),
    );
    assert!(min <= max, "min {min} > max {max}");
    for p in [p50, p90, p99, p999] {
        assert!(
            (min..=max).contains(&p) || count == 0,
            "quantile {p} outside [{min}, {max}]"
        );
    }
    assert!(
        p50 <= p90 && p90 <= p99 && p99 <= p999,
        "quantiles not monotone"
    );
    let buckets = h
        .get("buckets")
        .and_then(serde::Value::as_array)
        .expect("buckets");
    let total: u64 = buckets
        .iter()
        .map(|b| match b.as_array().expect("bucket pair") {
            [_, serde::Value::U64(n)] => *n,
            other => panic!("bucket {other:?}"),
        })
        .sum();
    assert_eq!(total, count, "bucket counts don't sum to count");
}

/// The deterministic projection of a snapshot: every counter, every
/// histogram's total count, and `serve.flush_occupancy`'s exact bucket
/// counts (its recorded values are batch sizes — integers fixed by the
/// workload when coalescing is off).
fn deterministic_projection(stats: &serde::Value) -> BTreeMap<String, u64> {
    let mut projection = BTreeMap::new();
    let victims = stats
        .get("victims")
        .and_then(serde::Value::as_object)
        .expect("victims object");
    for (victim, section) in victims {
        if let Some(counters) = section.get("counters").and_then(serde::Value::as_object) {
            for (name, value) in counters {
                if let serde::Value::U64(n) = value {
                    projection.insert(format!("{victim}/{name}"), *n);
                }
            }
        }
        if let Some(histograms) = section.get("histograms").and_then(serde::Value::as_object) {
            for (name, h) in histograms {
                projection.insert(format!("{victim}/{name}#count"), field_u64(h, "count"));
                if name == "serve.flush_occupancy" {
                    projection.insert(format!("{victim}/{name}#sum"), field_u64(h, "sum"));
                    let buckets = h.get("buckets").and_then(serde::Value::as_array).unwrap();
                    for bucket in buckets {
                        let [le, serde::Value::U64(n)] = bucket.as_array().unwrap() else {
                            panic!("bucket {bucket:?}");
                        };
                        let le = match le {
                            serde::Value::F64(x) => format!("{x}"),
                            other => panic!("le {other:?}"),
                        };
                        projection.insert(format!("{victim}/{name}#le{le}"), *n);
                    }
                }
            }
        }
    }
    projection
}

/// Runs the fixed scripted workload against a fresh server with
/// `workers` evaluation threads and returns the final stats snapshot.
fn scripted_run(workers: usize) -> serde::Value {
    let config = ServeConfig {
        workers,
        max_sessions: 8,
        max_inflight: 4096,
        // Coalescing off: every job evaluates alone, so batch occupancy
        // is a pure function of the scripted batch sizes.
        coalesce: CoalescePolicy {
            enabled: false,
            ..CoalescePolicy::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", registry(), config).unwrap();
    let addr = server.local_addr();

    let mut c1 = Client::connect(addr).unwrap();
    c1.hello("s1", Some("toy"), Some(1), Some(10)).unwrap();
    assert_eq!(c1.query("s1", &inputs(4, 1)).unwrap().len(), 4);
    assert_eq!(c1.query("s1", &inputs(6, 2)).unwrap().len(), 6);
    // Budget exhausted: rejected, deterministic.
    let err = c1.query("s1", &inputs(1, 3)).unwrap_err();
    assert!(err.to_string().contains("budget_exhausted"), "{err}");
    // Unknown session: rejected, deterministic, no victim attribution.
    let err = c1.query("nope", &inputs(1, 4)).unwrap_err();
    assert!(err.to_string().contains("unknown_session"), "{err}");
    c1.close("s1").unwrap();

    let mut c2 = Client::connect(addr).unwrap();
    c2.hello("s2", Some("toy"), Some(2), Some(20)).unwrap();
    for round in 0..5 {
        assert_eq!(c2.query("s2", &inputs(4, 10 + round)).unwrap().len(), 4);
    }
    c2.close("s2").unwrap();

    let stats = c2.stats().unwrap();
    drop(c1);
    drop(c2);
    server.shutdown();
    stats
}

#[test]
fn deterministic_fields_are_worker_count_invariant() {
    let baseline = scripted_run(1);

    // Pin the absolute expectations once, on the single-worker run.
    // Victim-attributed requests: 2 hellos + 7 successful queries +
    // 2 closes; failures carry no session status, so they (and the
    // final stats call, which post-dates its own snapshot) land in
    // `_server`.
    assert_eq!(counter(&baseline, "toy", "serve.requests"), 11);
    assert_eq!(counter(&baseline, "toy", "serve.queries"), 30);
    assert_eq!(counter(&baseline, "_server", "serve.requests"), 2);
    assert_eq!(
        counter(&baseline, "_server", "serve.reject.budget_exhausted"),
        1
    );
    assert_eq!(
        counter(&baseline, "_server", "serve.reject.unknown_session"),
        1
    );
    // One flush per successful query request (coalescing off), all
    // under the size cap, so every flush counts as "deadline".
    assert_eq!(counter(&baseline, "_server", "serve.flush_deadline"), 7);
    assert_eq!(counter(&baseline, "_server", "serve.flush_size"), 0);
    let occupancy = histogram(&baseline, "toy", "serve.flush_occupancy");
    assert_eq!(field_u64(occupancy, "count"), 7);
    assert_eq!(field_u64(occupancy, "sum"), 30);
    let latency = histogram(&baseline, "toy", "serve.request_ns");
    assert_eq!(field_u64(latency, "count"), 11);
    assert_well_formed_histogram(latency);
    assert_well_formed_histogram(histogram(&baseline, "toy", "serve.queue_wait_ns"));
    assert_eq!(
        field_u64(histogram(&baseline, "toy", "serve.queue_wait_ns"), "count"),
        7
    );

    // The same projection must fall out at 4 and 8 workers.
    let expected = deterministic_projection(&baseline);
    for workers in [4usize, 8] {
        let stats = scripted_run(workers);
        assert_eq!(
            deterministic_projection(&stats),
            expected,
            "deterministic fields diverged at {workers} workers"
        );
        // Timing fields only need to be present and well-formed.
        assert_well_formed_histogram(histogram(&stats, "toy", "serve.request_ns"));
        assert_well_formed_histogram(histogram(&stats, "toy", "serve.queue_wait_ns"));
    }
}

#[test]
fn stats_is_admitted_when_session_table_is_full() {
    let config = ServeConfig {
        workers: 1,
        max_sessions: 1,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", registry(), config).unwrap();
    let addr = server.local_addr();

    let mut holder = Client::connect(addr).unwrap();
    holder.hello("hog", Some("toy"), Some(1), None).unwrap();

    // A second client can't get a session…
    let mut bystander = Client::connect(addr).unwrap();
    let err = bystander
        .hello("later", Some("toy"), Some(2), None)
        .unwrap_err();
    assert!(err.to_string().contains("session_table_full"), "{err}");
    // …but its scrape is admitted, and sees the rejection it just
    // suffered plus the attached-session gauge at the cap.
    let stats = bystander.stats().unwrap();
    assert_eq!(
        counter(&stats, "_server", "serve.reject.session_table_full"),
        1
    );
    let gauges = victim_section(&stats, "_server")
        .get("gauges")
        .expect("gauges");
    assert_eq!(
        gauges.get("serve.attached_sessions"),
        Some(&serde::Value::F64(1.0))
    );
    assert_eq!(gauges.get("serve.draining"), Some(&serde::Value::F64(0.0)));

    drop(holder);
    drop(bystander);
    server.shutdown();
}

#[test]
fn stats_returns_a_coherent_snapshot_during_drain() {
    let server = Server::start("127.0.0.1:0", registry(), ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut client = Client::connect(addr).unwrap();
    client.hello("s1", Some("toy"), Some(7), Some(8)).unwrap();
    assert_eq!(client.query("s1", &inputs(8, 9)).unwrap().len(), 8);

    // Flip the server into draining (the flag is set synchronously; the
    // drain itself only runs once `shutdown()`/`run_until_shutdown`
    // joins the threads). New hellos and queries are now refused…
    client.shutdown_server().unwrap();
    let err = client.query("s1", &inputs(1, 10)).unwrap_err();
    assert!(err.to_string().contains("shutting_down"), "{err}");
    // …but stats still answers, coherently, with the drain visible.
    let stats = client.stats().unwrap();
    assert_eq!(counter(&stats, "toy", "serve.queries"), 8);
    let gauges = victim_section(&stats, "_server")
        .get("gauges")
        .expect("gauges");
    assert_eq!(gauges.get("serve.draining"), Some(&serde::Value::F64(1.0)));
    // Prometheus exposition works during drain too.
    let prom = client.stats_prometheus().unwrap();
    assert!(
        prom.contains("xbar_serve_queries_total{victim=\"toy\"} 8"),
        "{prom}"
    );
    assert!(
        prom.contains("xbar_serve_draining{victim=\"_server\"} 1"),
        "{prom}"
    );

    drop(client);
    server.shutdown();
}

#[test]
fn coalesced_occupancy_sum_conserves_total_queries() {
    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", registry(), config).unwrap();
    let addr = server.local_addr();

    let mut client = Client::connect(addr).unwrap();
    client.hello("s1", Some("toy"), Some(3), None).unwrap();
    let mut total = 0u64;
    for round in 0..6 {
        let n = 1 + (round % 3) as usize;
        total += n as u64;
        client.query("s1", &inputs(n, 40 + round as u64)).unwrap();
    }
    let stats = client.stats().unwrap();
    // However the coalescer batched them, every query is accounted for
    // exactly once in the occupancy histogram's sum.
    let occupancy = histogram(&stats, "toy", "serve.flush_occupancy");
    assert_eq!(field_u64(occupancy, "sum"), total);
    assert_eq!(counter(&stats, "toy", "serve.queries"), total);
    assert_well_formed_histogram(occupancy);

    drop(client);
    server.shutdown();
}

#[test]
fn periodic_metrics_snapshots_are_monotone_and_flushed_on_drain() {
    let path =
        std::env::temp_dir().join(format!("xbar_serve_metrics_{}.jsonl", std::process::id()));
    let config = ServeConfig {
        workers: 2,
        metrics: Some(path.clone()),
        metrics_every: std::time::Duration::from_millis(30),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", registry(), config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.hello("s1", Some("toy"), Some(5), None).unwrap();
    for round in 0..4 {
        client.query("s1", &inputs(3, 60 + round)).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    drop(client);
    server.shutdown();

    let records: Vec<serde::Value> = xbar_runtime::jsonl::read_jsonl(&path).unwrap();
    assert!(
        records.len() >= 2,
        "expected periodic + final snapshots, got {}",
        records.len()
    );
    let mut last_seq = None;
    let mut last_queries = 0;
    for record in &records {
        assert_eq!(
            record.get("kind").and_then(serde::Value::as_str),
            Some(xbar_serve::METRICS_RECORD_KIND)
        );
        let seq = field_u64(record, "seq");
        if let Some(prev) = last_seq {
            assert!(seq >= prev, "seq went backwards: {prev} -> {seq}");
        }
        last_seq = Some(seq);
        // Counters are cumulative: they only ever grow across snapshots.
        let stats = record.get("stats").expect("stats payload");
        let queries = counter(stats, "toy", "serve.queries");
        assert!(
            queries >= last_queries,
            "counter shrank: {last_queries} -> {queries}"
        );
        last_queries = queries;
    }
    // The final (drain) snapshot saw the whole workload.
    assert_eq!(last_queries, 12);
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_stats_format_is_a_usage_error() {
    let server = Server::start("127.0.0.1:0", registry(), ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut request = Request::new("stats");
    request.format = Some("xml".to_string());
    let response = client.request(&request).unwrap();
    assert!(!response.ok);
    assert_eq!(response.code.as_deref(), Some("usage"));
    drop(client);
    server.shutdown();
}
