//! Aggregation of measurements across independent runs.
//!
//! The paper averages Table I over 5 runs and Fig. 5 over 10 runs with
//! shaded ±1-std error bars; [`RunSummary`] and [`summarize_runs`] are the
//! bookkeeping for that.

use crate::descriptive::RunningStats;
use serde::{Deserialize, Serialize};

/// Mean ± standard deviation of one measured quantity over independent runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Mean over runs.
    pub mean: f64,
    /// Unbiased standard deviation over runs (`0.0` for a single run).
    pub std: f64,
    /// Smallest run value.
    pub min: f64,
    /// Largest run value.
    pub max: f64,
}

impl RunSummary {
    /// Summarises a slice of per-run values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "RunSummary requires at least one run");
        let rs: RunningStats = values.iter().copied().collect();
        RunSummary {
            runs: values.len(),
            mean: rs.mean(),
            std: rs.sample_std(),
            min: rs.min(),
            max: rs.max(),
        }
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.std / (self.runs as f64).sqrt()
        }
    }
}

impl std::fmt::Display for RunSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4} (n={})", self.mean, self.std, self.runs)
    }
}

/// Summarises a "matrix" of runs: `runs[r][i]` is the value of series
/// point `i` in run `r`. Returns one [`RunSummary`] per series point.
///
/// This is the exact shape of the paper's Fig. 4/Fig. 5 curves: each
/// series point (attack strength or query count) is averaged over runs.
///
/// # Panics
///
/// Panics if `runs` is empty or the rows have differing lengths.
pub fn summarize_runs(runs: &[Vec<f64>]) -> Vec<RunSummary> {
    assert!(!runs.is_empty(), "summarize_runs requires at least one run");
    let width = runs[0].len();
    for (r, row) in runs.iter().enumerate() {
        assert_eq!(row.len(), width, "run {r} has inconsistent length");
    }
    (0..width)
        .map(|i| {
            let vals: Vec<f64> = runs.iter().map(|row| row[i]).collect();
            RunSummary::from_values(&vals)
        })
        .collect()
}

/// Percentile bootstrap confidence interval for the mean of `values`.
///
/// Resamples with replacement `resamples` times using a caller-supplied
/// uniform index source (`next_index(len)`), so the crate stays free of a
/// direct RNG dependency and results are reproducible.
///
/// Returns `(lo, hi)` at the given confidence level (e.g. `0.95`).
///
/// # Panics
///
/// Panics if `values` is empty, `resamples == 0`, or `confidence` is not
/// in `(0, 1)`.
pub fn bootstrap_mean_ci<F: FnMut(usize) -> usize>(
    values: &[f64],
    resamples: usize,
    confidence: f64,
    mut next_index: F,
) -> (f64, f64) {
    assert!(!values.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "need at least one resample");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let n = values.len();
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..n {
            let idx = next_index(n);
            assert!(idx < n, "index source returned {idx} >= {n}");
            acc += values[idx];
        }
        means.push(acc / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((resamples as f64) * alpha).floor() as usize;
    let hi_idx = (((resamples as f64) * (1.0 - alpha)).ceil() as usize).min(resamples - 1);
    (means[lo_idx], means[hi_idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_run_summary() {
        let s = RunSummary::from_values(&[0.8]);
        assert_eq!(s.runs, 1);
        assert_eq!(s.mean, 0.8);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 0.8);
        assert_eq!(s.max, 0.8);
    }

    #[test]
    fn multi_run_summary() {
        let s = RunSummary::from_values(&[1.0, 2.0, 3.0]);
        assert_eq!(s.runs, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert!((s.sem() - 1.0 / 3.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn summarize_runs_per_point() {
        let runs = vec![vec![0.9, 0.5, 0.1], vec![0.7, 0.3, 0.1]];
        let s = summarize_runs(&runs);
        assert_eq!(s.len(), 3);
        assert!((s[0].mean - 0.8).abs() < 1e-12);
        assert!((s[1].mean - 0.4).abs() < 1e-12);
        assert_eq!(s[2].std, 0.0);
    }

    #[test]
    #[should_panic(expected = "inconsistent length")]
    fn ragged_runs_rejected() {
        let _ = summarize_runs(&[vec![1.0], vec![1.0, 2.0]]);
    }

    /// A tiny deterministic LCG for index generation in tests.
    fn lcg(seed: u64) -> impl FnMut(usize) -> usize {
        let mut state = seed;
        move |n: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % n
        }
    }

    #[test]
    fn bootstrap_ci_contains_true_mean_for_tight_data() {
        let values: Vec<f64> = (0..50).map(|i| 10.0 + (i % 5) as f64 * 0.01).collect();
        let (lo, hi) = bootstrap_mean_ci(&values, 500, 0.95, lcg(7));
        let mean = values.iter().sum::<f64>() / 50.0;
        assert!(
            lo <= mean && mean <= hi,
            "[{lo}, {hi}] should contain {mean}"
        );
        assert!(hi - lo < 0.02, "tight data gives a tight interval");
    }

    #[test]
    fn bootstrap_ci_widens_with_variance() {
        let tight: Vec<f64> = (0..40).map(|i| (i % 2) as f64 * 0.01).collect();
        let wide: Vec<f64> = (0..40).map(|i| (i % 2) as f64 * 10.0).collect();
        let (lo1, hi1) = bootstrap_mean_ci(&tight, 400, 0.95, lcg(1));
        let (lo2, hi2) = bootstrap_mean_ci(&wide, 400, 0.95, lcg(1));
        assert!(hi2 - lo2 > 10.0 * (hi1 - lo1));
    }

    #[test]
    fn bootstrap_ci_narrows_with_higher_confidence_demand() {
        let values: Vec<f64> = (0..30).map(|i| (i as f64 * 0.77).sin()).collect();
        let (lo50, hi50) = bootstrap_mean_ci(&values, 800, 0.5, lcg(3));
        let (lo99, hi99) = bootstrap_mean_ci(&values, 800, 0.99, lcg(3));
        assert!(hi99 - lo99 > hi50 - lo50);
        assert!(lo99 <= lo50 && hi99 >= hi50);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn bootstrap_rejects_empty() {
        let _ = bootstrap_mean_ci(&[], 10, 0.95, lcg(0));
    }

    #[test]
    fn display_contains_mean_and_n() {
        let s = RunSummary::from_values(&[1.0, 1.0]);
        let txt = s.to_string();
        assert!(txt.contains("1.0000"));
        assert!(txt.contains("n=2"));
    }
}
