//! MCMC convergence diagnostics: effective sample size and split-R̂.
//!
//! These gate the posterior chains of `xbar-infer`: a sweep cell's
//! credible intervals are only trusted once its chains mix
//! (split-R̂ ≈ 1) and retain enough independent information
//! (ESS well above the handful needed for stable quantiles).
//!
//! * [`ess`] — effective sample size of one chain via Geyer's initial
//!   monotone positive sequence estimator of the integrated
//!   autocorrelation time.
//! * [`multichain_ess`] — total ESS pooled across independent chains.
//! * [`split_rhat`] — the split-chain potential scale reduction factor
//!   (Gelman–Rubin R̂ on half-chains, which also catches within-chain
//!   trends that whole-chain R̂ misses).

use crate::{Result, StatsError};

/// Autocovariance of `x` at `lag`, normalised by `n` (the biased
/// estimator, which is the standard choice inside ESS because it keeps
/// the spectral estimate positive semi-definite).
fn autocovariance(x: &[f64], mean: f64, lag: usize) -> f64 {
    let n = x.len();
    let mut acc = 0.0;
    for t in 0..n - lag {
        acc += (x[t] - mean) * (x[t + lag] - mean);
    }
    acc / n as f64
}

/// Effective sample size of a single chain.
///
/// Estimates the integrated autocorrelation time with Geyer's initial
/// monotone positive sequence: successive autocorrelations are summed
/// in pairs `Γ_k = ρ_{2k} + ρ_{2k+1}`, truncated at the first
/// non-positive pair and forced monotone non-increasing. For an i.i.d.
/// chain the estimate is ≈ `n`; for an AR(1) chain with coefficient φ
/// it approaches `n·(1−φ)/(1+φ)`.
///
/// The returned value is clamped to `[1, n]`.
///
/// # Errors
///
/// * [`StatsError::TooFewSamples`] for fewer than 4 samples.
/// * [`StatsError::ZeroVariance`] for a constant chain.
pub fn ess(chain: &[f64]) -> Result<f64> {
    let n = chain.len();
    if n < 4 {
        return Err(StatsError::TooFewSamples { needed: 4, got: n });
    }
    let mean = chain.iter().sum::<f64>() / n as f64;
    let gamma0 = autocovariance(chain, mean, 0);
    if gamma0 <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    // Sum paired autocorrelations while the pairs stay positive and
    // monotone non-increasing.
    let mut tau = 1.0; // 1 + 2·Σρ_t, with ρ_0's pair partner ρ_1 below.
    let mut prev_pair = f64::INFINITY;
    let mut lag = 1;
    while lag + 1 < n {
        let pair =
            (autocovariance(chain, mean, lag) + autocovariance(chain, mean, lag + 1)) / gamma0;
        if pair <= 0.0 {
            break;
        }
        let pair = pair.min(prev_pair);
        tau += 2.0 * pair;
        prev_pair = pair;
        lag += 2;
    }
    Ok((n as f64 / tau).clamp(1.0, n as f64))
}

/// Total effective sample size across independent chains: the sum of
/// each chain's [`ess`].
///
/// # Errors
///
/// * [`StatsError::TooFewSamples`] if no chain is given.
/// * Propagates per-chain [`ess`] errors.
pub fn multichain_ess(chains: &[Vec<f64>]) -> Result<f64> {
    if chains.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    let mut total = 0.0;
    for chain in chains {
        total += ess(chain)?;
    }
    Ok(total)
}

/// Split-chain potential scale reduction factor (split-R̂).
///
/// Each chain is halved (dropping one trailing sample from odd-length
/// chains), and the classic Gelman–Rubin statistic is computed over the
/// resulting `2m` half-chains:
///
/// ```text
/// R̂ = sqrt( ((n−1)/n · W + B/n) / W )
/// ```
///
/// where `W` is the mean within-sequence variance and `B/n` the
/// between-sequence variance of the half-chain means. Values near 1
/// indicate the chains agree with each other *and* with their own
/// halves; a chain that trends (burn-in not discarded, poor mixing)
/// inflates R̂ even when only one chain is supplied.
///
/// Degenerate inputs: if every half-chain is constant, the statistic is
/// `1.0` when they are all the same constant and `∞` otherwise.
///
/// # Errors
///
/// * [`StatsError::TooFewSamples`] if no chain is given or any chain
///   has fewer than 4 samples (each half needs at least 2).
pub fn split_rhat(chains: &[Vec<f64>]) -> Result<f64> {
    if chains.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    let half = chains.iter().map(Vec::len).min().unwrap_or(0) / 2;
    if half < 2 {
        return Err(StatsError::TooFewSamples {
            needed: 4,
            got: half * 2,
        });
    }
    let mut sequences: Vec<&[f64]> = Vec::with_capacity(chains.len() * 2);
    for chain in chains {
        // Truncate every chain to the shortest chain's even length so
        // the half-chains are balanced.
        sequences.push(&chain[..half]);
        sequences.push(&chain[half..2 * half]);
    }
    let m = sequences.len() as f64;
    let n = half as f64;
    let means: Vec<f64> = sequences
        .iter()
        .map(|s| s.iter().sum::<f64>() / n)
        .collect();
    let variances: Vec<f64> = sequences
        .iter()
        .zip(&means)
        .map(|(s, &mu)| s.iter().map(|v| (v - mu) * (v - mu)).sum::<f64>() / (n - 1.0))
        .collect();
    let w = variances.iter().sum::<f64>() / m;
    let grand = means.iter().sum::<f64>() / m;
    let b_over_n = means
        .iter()
        .map(|&mu| (mu - grand) * (mu - grand))
        .sum::<f64>()
        / (m - 1.0);
    if w <= 0.0 {
        return Ok(if b_over_n <= 0.0 { 1.0 } else { f64::INFINITY });
    }
    let var_plus = (n - 1.0) / n * w + b_over_n;
    Ok((var_plus / w).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic uniform(0,1) source: SplitMix-style 64-bit mixer.
    /// Keeps the crate free of an RNG dependency.
    fn uniform(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Approximately standard-normal draws (sum of 12 uniforms − 6).
    fn gaussian(seed: u64) -> impl FnMut() -> f64 {
        let mut u = uniform(seed);
        move || (0..12).map(|_| u()).sum::<f64>() - 6.0
    }

    fn iid_chain(n: usize, seed: u64) -> Vec<f64> {
        let mut g = gaussian(seed);
        (0..n).map(|_| g()).collect()
    }

    /// AR(1) fixture with known integrated autocorrelation time
    /// `(1+φ)/(1−φ)`.
    fn ar1_chain(n: usize, phi: f64, seed: u64) -> Vec<f64> {
        let mut g = gaussian(seed);
        let innovation = (1.0 - phi * phi).sqrt();
        let mut x = g();
        (0..n)
            .map(|_| {
                x = phi * x + innovation * g();
                x
            })
            .collect()
    }

    #[test]
    fn iid_chain_has_near_full_ess() {
        let n = 4000;
        let e = ess(&iid_chain(n, 1)).unwrap();
        assert!(
            e > 0.6 * n as f64 && e <= n as f64,
            "iid ESS {e} should be close to n={n}"
        );
    }

    #[test]
    fn ar1_ess_matches_known_autocorrelation_time() {
        let n = 8000;
        let phi = 0.9;
        let expected = n as f64 * (1.0 - phi) / (1.0 + phi); // ≈ n/19
        let e = ess(&ar1_chain(n, phi, 2)).unwrap();
        assert!(
            e > expected / 3.0 && e < expected * 3.0,
            "AR(1) ESS {e} should be within 3x of {expected}"
        );
    }

    #[test]
    fn correlation_reduces_ess() {
        let n = 4000;
        let iid = ess(&iid_chain(n, 3)).unwrap();
        let correlated = ess(&ar1_chain(n, 0.95, 3)).unwrap();
        assert!(
            correlated < iid / 4.0,
            "AR(0.95) ESS {correlated} should be far below iid {iid}"
        );
    }

    #[test]
    fn multichain_ess_sums_chains() {
        let a = iid_chain(1000, 4);
        let b = iid_chain(1000, 5);
        let total = multichain_ess(&[a.clone(), b.clone()]).unwrap();
        let sum = ess(&a).unwrap() + ess(&b).unwrap();
        assert!((total - sum).abs() < 1e-9);
    }

    #[test]
    fn ess_rejects_degenerate_chains() {
        assert_eq!(
            ess(&[1.0, 1.0]),
            Err(StatsError::TooFewSamples { needed: 4, got: 2 })
        );
        assert_eq!(ess(&[2.5; 64]), Err(StatsError::ZeroVariance));
        assert_eq!(
            multichain_ess(&[]),
            Err(StatsError::TooFewSamples { needed: 1, got: 0 })
        );
    }

    #[test]
    fn well_mixed_chains_have_rhat_near_one() {
        let chains: Vec<Vec<f64>> = (0..4).map(|c| iid_chain(2000, 10 + c)).collect();
        let r = split_rhat(&chains).unwrap();
        assert!(
            (r - 1.0).abs() < 0.05,
            "iid chains should give R̂ ≈ 1, got {r}"
        );
    }

    #[test]
    fn shifted_chain_inflates_rhat() {
        let mut chains: Vec<Vec<f64>> = (0..3).map(|c| iid_chain(1000, 20 + c)).collect();
        let shifted: Vec<f64> = iid_chain(1000, 23).iter().map(|v| v + 5.0).collect();
        chains.push(shifted);
        let r = split_rhat(&chains).unwrap();
        assert!(r > 1.5, "disagreeing chains should inflate R̂, got {r}");
    }

    #[test]
    fn single_trending_chain_is_caught_by_the_split() {
        // A linear trend: both halves have the same shape but different
        // means — exactly what the split construction exists to catch.
        let trend: Vec<f64> = (0..1000).map(|i| i as f64 * 0.01).collect();
        let r = split_rhat(&[trend]).unwrap();
        assert!(r > 1.1, "trending chain should fail split-R̂, got {r}");
    }

    #[test]
    fn constant_chains_degenerate_cleanly() {
        assert_eq!(split_rhat(&[vec![3.0; 10], vec![3.0; 10]]).unwrap(), 1.0);
        assert!(split_rhat(&[vec![1.0; 10], vec![2.0; 10]])
            .unwrap()
            .is_infinite());
    }

    #[test]
    fn split_rhat_rejects_short_or_missing_chains() {
        assert_eq!(
            split_rhat(&[]),
            Err(StatsError::TooFewSamples { needed: 1, got: 0 })
        );
        assert_eq!(
            split_rhat(&[vec![1.0, 2.0, 3.0]]),
            Err(StatsError::TooFewSamples { needed: 4, got: 2 })
        );
        // One short chain limits every chain (balanced halves).
        assert!(split_rhat(&[iid_chain(100, 30), vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn odd_lengths_are_truncated_not_rejected() {
        let r = split_rhat(&[iid_chain(1001, 40), iid_chain(999, 41)]).unwrap();
        assert!((r - 1.0).abs() < 0.1);
    }
}
