//! Correlation coefficients.
//!
//! Table I of the paper reports two statistics over the
//! (sensitivity-magnitude, column-1-norm) pairs:
//!
//! * **mean correlation** — the Pearson correlation computed per input
//!   sample and then averaged over the dataset, and
//! * **correlation of the mean** — the Pearson correlation between the
//!   *mean* sensitivity map and the 1-norms.
//!
//! Both reduce to [`pearson`]; the experiment harness composes them.

use crate::{Result, StatsError};

/// Pearson product-moment correlation coefficient.
///
/// # Errors
///
/// * [`StatsError::LengthMismatch`] if the slices differ in length.
/// * [`StatsError::TooFewSamples`] with fewer than two pairs.
/// * [`StatsError::ZeroVariance`] if either input is constant.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            lhs: x.len(),
            rhs: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(StatsError::TooFewSamples {
            needed: 2,
            got: x.len(),
        });
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Sample covariance (unbiased, n-1 denominator).
///
/// # Errors
///
/// Same conditions as [`pearson`] except constant inputs are allowed.
pub fn covariance(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            lhs: x.len(),
            rhs: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(StatsError::TooFewSamples {
            needed: 2,
            got: x.len(),
        });
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxy: f64 = x
        .iter()
        .zip(y)
        .map(|(&xi, &yi)| (xi - mx) * (yi - my))
        .sum();
    Ok(sxy / (n - 1.0))
}

/// Spearman rank correlation (Pearson correlation of the mid-ranks; ties
/// receive averaged ranks).
///
/// # Errors
///
/// Same conditions as [`pearson`].
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            lhs: x.len(),
            rhs: y.len(),
        });
    }
    let rx = mid_ranks(x);
    let ry = mid_ranks(y);
    pearson(&rx, &ry)
}

/// Assigns mid-ranks (1-based; tied values get the average of their ranks).
fn mid_ranks(x: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut ranks = vec![0.0; x.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && x[idx[j + 1]] == x[idx[i]] {
            j += 1;
        }
        // Average 1-based rank of positions i..=j.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Pearson correlation where pairs containing NaN are skipped; returns
/// `None` when fewer than two valid pairs remain or when a variance is zero.
///
/// This is the lenient variant the experiment harness uses when some
/// per-sample correlations are undefined (e.g. an all-zero sensitivity map).
pub fn pearson_lenient(x: &[f64], y: &[f64]) -> Option<f64> {
    let pairs: (Vec<f64>, Vec<f64>) = x
        .iter()
        .zip(y)
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .map(|(&a, &b)| (a, b))
        .unzip();
    pearson(&pairs.0, &pairs.1).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_intermediate_value() {
        // Hand-computed example.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        let r = pearson(&x, &y).unwrap();
        assert!((r - 0.8).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn invariance_under_affine_maps() {
        let x = [0.3, -1.2, 2.2, 0.0, 5.5];
        let y = [1.0, 0.0, 3.0, 1.5, 4.0];
        let r0 = pearson(&x, &y).unwrap();
        let x2: Vec<f64> = x.iter().map(|v| 7.0 * v - 3.0).collect();
        let y2: Vec<f64> = y.iter().map(|v| 0.1 * v + 100.0).collect();
        let r1 = pearson(&x2, &y2).unwrap();
        assert!((r0 - r1).abs() < 1e-12);
    }

    #[test]
    fn bounded_by_one() {
        let x = [0.1, 0.9, 0.4, 0.7, 0.2, 0.6];
        let y = [5.0, 1.0, 3.0, 2.0, 4.0, 3.5];
        let r = pearson(&x, &y).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn error_conditions() {
        assert!(matches!(
            pearson(&[1.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            pearson(&[1.0], &[1.0]),
            Err(StatsError::TooFewSamples { .. })
        ));
        assert!(matches!(
            pearson(&[1.0, 1.0], &[1.0, 2.0]),
            Err(StatsError::ZeroVariance)
        ));
    }

    #[test]
    fn covariance_known() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        assert!((covariance(&x, &y).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_monotone_is_one() {
        let x = [1.0, 5.0, 2.0, 8.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.powi(3)).collect(); // monotone, nonlinear
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.5, 2.5, 4.0];
        let r = spearman(&x, &y).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mid_ranks_known() {
        assert_eq!(mid_ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
        assert_eq!(mid_ranks(&[1.0, 2.0, 2.0, 3.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn lenient_skips_nan() {
        let x = [1.0, f64::NAN, 2.0, 3.0];
        let y = [2.0, 5.0, 4.0, 6.0];
        let r = pearson_lenient(&x, &y).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
        assert!(pearson_lenient(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }
}
