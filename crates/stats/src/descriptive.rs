//! Descriptive statistics: means, variances, medians, quantiles, and a
//! numerically stable streaming accumulator.

use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`StatsError::TooFewSamples`] for an empty slice.
pub fn mean(x: &[f64]) -> Result<f64> {
    if x.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    Ok(x.iter().sum::<f64>() / x.len() as f64)
}

/// Unbiased (n-1) sample variance.
///
/// # Errors
///
/// Returns [`StatsError::TooFewSamples`] for fewer than two samples.
pub fn variance(x: &[f64]) -> Result<f64> {
    if x.len() < 2 {
        return Err(StatsError::TooFewSamples {
            needed: 2,
            got: x.len(),
        });
    }
    let m = mean(x)?;
    let ss: f64 = x.iter().map(|&v| (v - m) * (v - m)).sum();
    Ok(ss / (x.len() - 1) as f64)
}

/// Unbiased sample standard deviation.
///
/// # Errors
///
/// Returns [`StatsError::TooFewSamples`] for fewer than two samples.
pub fn std_dev(x: &[f64]) -> Result<f64> {
    Ok(variance(x)?.sqrt())
}

/// Population (n) variance.
///
/// # Errors
///
/// Returns [`StatsError::TooFewSamples`] for an empty slice.
pub fn population_variance(x: &[f64]) -> Result<f64> {
    if x.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    let m = mean(x)?;
    Ok(x.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64)
}

/// Median (average of the two central order statistics for even lengths).
///
/// # Errors
///
/// Returns [`StatsError::TooFewSamples`] for an empty slice.
pub fn median(x: &[f64]) -> Result<f64> {
    quantile(x, 0.5)
}

/// Linear-interpolation quantile, `q` in `[0, 1]`.
///
/// # Errors
///
/// * [`StatsError::TooFewSamples`] for an empty slice.
/// * [`StatsError::InvalidParameter`] if `q` is outside `[0, 1]` or NaN.
pub fn quantile(x: &[f64], q: f64) -> Result<f64> {
    if x.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter { name: "q" });
    }
    let mut sorted = x.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Minimum value (NaN entries are ignored).
///
/// # Errors
///
/// Returns [`StatsError::TooFewSamples`] for an empty slice.
pub fn min(x: &[f64]) -> Result<f64> {
    if x.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    Ok(x.iter().copied().fold(f64::INFINITY, f64::min))
}

/// Maximum value (NaN entries are ignored).
///
/// # Errors
///
/// Returns [`StatsError::TooFewSamples`] for an empty slice.
pub fn max(x: &[f64]) -> Result<f64> {
    if x.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    Ok(x.iter().copied().fold(f64::NEG_INFINITY, f64::max))
}

/// Numerically stable streaming mean/variance accumulator (Welford's
/// algorithm).
///
/// # Example
///
/// ```
/// use xbar_stats::descriptive::RunningStats;
///
/// let mut rs = RunningStats::new();
/// for v in [1.0, 2.0, 3.0] {
///     rs.push(v);
/// }
/// assert_eq!(rs.count(), 3);
/// assert!((rs.mean() - 2.0).abs() < 1e-12);
/// assert!((rs.sample_variance() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations so far (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`0.0` with fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut rs = RunningStats::new();
        rs.extend(iter);
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_known() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn variance_known() {
        // Sample variance of [2, 4, 4, 4, 5, 5, 7, 9] is 32/7.
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&x).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((population_variance(&x).unwrap() - 4.0).abs() < 1e-12);
        assert!(variance(&[1.0]).is_err());
    }

    #[test]
    fn std_dev_known() {
        assert!((std_dev(&[1.0, 3.0]).unwrap() - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn quantile_endpoints_and_interp() {
        let x = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&x, 0.0).unwrap(), 10.0);
        assert_eq!(quantile(&x, 1.0).unwrap(), 40.0);
        assert!((quantile(&x, 0.25).unwrap() - 17.5).abs() < 1e-12);
        assert!(quantile(&x, 1.5).is_err());
        assert!(quantile(&x, f64::NAN).is_err());
    }

    #[test]
    fn min_max_known() {
        let x = [3.0, -1.0, 2.0];
        assert_eq!(min(&x).unwrap(), -1.0);
        assert_eq!(max(&x).unwrap(), 3.0);
    }

    #[test]
    fn running_stats_matches_batch() {
        let x = [1.5, -2.0, 3.25, 0.0, 7.0, -1.0];
        let rs: RunningStats = x.iter().copied().collect();
        assert_eq!(rs.count(), 6);
        assert!((rs.mean() - mean(&x).unwrap()).abs() < 1e-12);
        assert!((rs.sample_variance() - variance(&x).unwrap()).abs() < 1e-12);
        assert_eq!(rs.min(), -2.0);
        assert_eq!(rs.max(), 7.0);
    }

    #[test]
    fn running_stats_merge_matches_single_pass() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0];
        let mut ra: RunningStats = a.iter().copied().collect();
        let rb: RunningStats = b.iter().copied().collect();
        ra.merge(&rb);
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let rall: RunningStats = all.iter().copied().collect();
        assert_eq!(ra.count(), rall.count());
        assert!((ra.mean() - rall.mean()).abs() < 1e-12);
        assert!((ra.sample_variance() - rall.sample_variance()).abs() < 1e-12);
    }

    #[test]
    fn running_stats_merge_with_empty() {
        let mut empty = RunningStats::new();
        let full: RunningStats = [5.0, 6.0].iter().copied().collect();
        empty.merge(&full);
        assert_eq!(empty.count(), 2);
        let mut full2 = full;
        full2.merge(&RunningStats::new());
        assert_eq!(full2.count(), 2);
    }

    #[test]
    fn running_stats_numerical_stability() {
        // Large offset: naive sum-of-squares would lose precision.
        let offset = 1e9;
        let rs: RunningStats = [offset + 1.0, offset + 2.0, offset + 3.0]
            .iter()
            .copied()
            .collect();
        assert!((rs.sample_variance() - 1.0).abs() < 1e-6);
    }
}
