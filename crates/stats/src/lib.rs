//! # xbar-stats
//!
//! Statistics substrate for the `xbar-power-attacks` workspace.
//!
//! Everything the paper's evaluation needs, implemented from scratch:
//!
//! * [`descriptive`] — means, variances, medians, quantiles, and
//!   numerically stable streaming moments ([`descriptive::RunningStats`]).
//! * [`correlation`] — Pearson and Spearman correlation; used for Table I's
//!   sensitivity-vs-1-norm correlations.
//! * [`special`] — ln-gamma, regularised incomplete beta, erf; the
//!   machinery behind exact t-distribution p-values.
//! * [`ttest`] — Welch's and Student's t-tests with two-sided p-values;
//!   used for Figure 5's statistical-significance asterisks.
//! * [`aggregate`] — mean ± std aggregation across independent runs.
//! * [`convergence`] — MCMC effective sample size and split-R̂; gates the
//!   posterior chains of `xbar-infer`.
//!
//! # Example
//!
//! ```
//! use xbar_stats::correlation::pearson;
//!
//! let x = [1.0, 2.0, 3.0, 4.0];
//! let y = [2.0, 4.0, 6.0, 8.0];
//! assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod aggregate;
pub mod convergence;
pub mod correlation;
pub mod descriptive;
pub mod special;
pub mod ttest;

use std::fmt;

/// Errors produced by statistical routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// The input slice was empty (or too short for the statistic).
    TooFewSamples {
        /// Samples required.
        needed: usize,
        /// Samples supplied.
        got: usize,
    },
    /// Two paired inputs had different lengths.
    LengthMismatch {
        /// Length of the first input.
        lhs: usize,
        /// Length of the second input.
        rhs: usize,
    },
    /// The statistic is undefined because an input has zero variance.
    ZeroVariance,
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::TooFewSamples { needed, got } => {
                write!(f, "need at least {needed} samples, got {got}")
            }
            StatsError::LengthMismatch { lhs, rhs } => {
                write!(f, "paired inputs have different lengths: {lhs} vs {rhs}")
            }
            StatsError::ZeroVariance => write!(f, "statistic undefined for zero-variance input"),
            StatsError::InvalidParameter { name } => {
                write!(f, "parameter {name} is outside its valid domain")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(!StatsError::ZeroVariance.to_string().is_empty());
        assert!(StatsError::TooFewSamples { needed: 2, got: 0 }
            .to_string()
            .contains('2'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
