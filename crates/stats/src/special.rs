//! Special functions: log-gamma, regularised incomplete beta, and erf.
//!
//! These provide the exact tail probabilities behind [`crate::ttest`]'s
//! p-values (the paper's Fig. 5 marks improvements with `p < 0.05`
//! asterisks from a Student's t-test).

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 over the positive reals.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularised incomplete beta function `I_x(a, b)` via the Lentz
/// continued-fraction expansion.
///
/// Returns values clamped to `[0, 1]`. `x` outside `[0, 1]` saturates.
///
/// # Panics
///
/// Panics (in debug builds) if `a <= 0` or `b <= 0`.
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && b > 0.0, "betai parameters must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry that keeps the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Modified Lentz continued fraction for the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        let m2 = 2.0 * m_f;
        // Even step.
        let aa = m_f * (b - m_f) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m_f) * (qab + m_f) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function, Abramowitz & Stegun 7.1.26 rational approximation
/// (max absolute error ~1.5e-7), sign-symmetric.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Two-sided p-value of a t statistic with `df` degrees of freedom:
/// `P(|T| >= |t|) = I_{df/(df+t²)}(df/2, 1/2)`.
///
/// `df` may be fractional (Welch–Satterthwaite).
pub fn t_two_sided_p(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    if df <= 0.0 {
        return 1.0;
    }
    let x = df / (df + t * t);
    betai(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x) -> ln Γ(x+1) = ln x + ln Γ(x).
        for &x in &[0.3, 1.7, 4.2, 10.5] {
            assert!((ln_gamma(x + 1.0) - x.ln() - ln_gamma(x)).abs() < 1e-10);
        }
    }

    #[test]
    fn betai_boundaries() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
        assert_eq!(betai(2.0, 3.0, -0.5), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.5), 1.0);
    }

    #[test]
    fn betai_uniform_case() {
        // I_x(1, 1) = x.
        for &x in &[0.1, 0.25, 0.5, 0.9] {
            assert!((betai(1.0, 1.0, x) - x).abs() < 1e-10);
        }
    }

    #[test]
    fn betai_known_values() {
        // I_x(2, 2) = x²(3 - 2x).
        for &x in &[0.2, 0.5, 0.8] {
            let want = x * x * (3.0 - 2.0 * x);
            assert!((betai(2.0, 2.0, x) - want).abs() < 1e-10);
        }
        // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
        assert!((betai(3.0, 5.0, 0.3) - (1.0 - betai(5.0, 3.0, 0.7))).abs() < 1e-10);
    }

    #[test]
    fn betai_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..=20 {
            let x = i as f64 / 20.0;
            let v = betai(2.5, 4.0, x);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn erf_known_values() {
        // The A&S 7.1.26 approximation is only ~1.5e-7 accurate, and its
        // polynomial sums to 1 - 1e-9 at x = 0.
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_91).abs() < 1e-5);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-8);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn t_p_value_known_quantiles() {
        // Two-sided critical values: t = 2.571 at df = 5 gives p ≈ 0.05,
        // t = 2.086 at df = 20 gives p ≈ 0.05.
        assert!((t_two_sided_p(2.571, 5.0) - 0.05).abs() < 2e-3);
        assert!((t_two_sided_p(2.086, 20.0) - 0.05).abs() < 2e-3);
        // t = 0 -> p = 1.
        assert!((t_two_sided_p(0.0, 10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn t_p_value_monotone_in_t() {
        let mut prev = 1.1;
        for i in 0..20 {
            let t = i as f64 * 0.5;
            let p = t_two_sided_p(t, 9.0);
            assert!(p <= prev);
            prev = p;
        }
    }

    #[test]
    fn t_p_value_approaches_normal_for_large_df() {
        // With df -> inf the t distribution approaches the normal:
        // p(1.96) -> 0.05.
        let p = t_two_sided_p(1.96, 1e6);
        assert!((p - 0.05).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn t_p_value_edge_cases() {
        assert_eq!(t_two_sided_p(f64::INFINITY, 10.0), 0.0);
        assert_eq!(t_two_sided_p(1.0, 0.0), 1.0);
    }
}
