//! Student's and Welch's t-tests with exact two-sided p-values.
//!
//! The paper's Figure 5 marks attack-efficacy improvements with asterisks
//! when a Student's t-test over 10 independent runs yields `p < 0.05`;
//! [`welch_t_test`] (and [`student_t_test`] for the equal-variance form)
//! reproduce that machinery.

use crate::special::t_two_sided_p;
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// The outcome of a two-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TTestResult {
    /// The t statistic (positive when the first sample's mean is larger).
    pub t: f64,
    /// Degrees of freedom (fractional for Welch's test).
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Difference of means, `mean(a) - mean(b)`.
    pub mean_diff: f64,
}

impl TTestResult {
    /// Whether the difference is significant at the given level (e.g.
    /// `0.05`, the threshold the paper uses for its asterisks).
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

fn mean_var(x: &[f64]) -> Result<(f64, f64)> {
    if x.len() < 2 {
        return Err(StatsError::TooFewSamples {
            needed: 2,
            got: x.len(),
        });
    }
    let n = x.len() as f64;
    let m = x.iter().sum::<f64>() / n;
    let v = x.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / (n - 1.0);
    Ok((m, v))
}

/// Welch's unequal-variance two-sample t-test (two-sided).
///
/// This is the robust default for comparing attack-efficacy distributions
/// across independent runs, as in the paper's Fig. 5.
///
/// # Errors
///
/// * [`StatsError::TooFewSamples`] if either sample has fewer than two
///   observations.
/// * [`StatsError::ZeroVariance`] if both samples are exactly constant and
///   equal (the statistic is undefined); if they are constant but unequal
///   the test returns `p_value = 0.0`.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Result<TTestResult> {
    let (ma, va) = mean_var(a)?;
    let (mb, vb) = mean_var(b)?;
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let se2 = va / na + vb / nb;
    let mean_diff = ma - mb;
    if se2 == 0.0 {
        if mean_diff == 0.0 {
            return Err(StatsError::ZeroVariance);
        }
        return Ok(TTestResult {
            t: f64::INFINITY * mean_diff.signum(),
            df: na + nb - 2.0,
            p_value: 0.0,
            mean_diff,
        });
    }
    let t = mean_diff / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / ((va / na) * (va / na) / (na - 1.0) + (vb / nb) * (vb / nb) / (nb - 1.0));
    Ok(TTestResult {
        t,
        df,
        p_value: t_two_sided_p(t, df),
        mean_diff,
    })
}

/// Student's pooled-variance two-sample t-test (two-sided), assuming equal
/// variances.
///
/// # Errors
///
/// Same conditions as [`welch_t_test`].
pub fn student_t_test(a: &[f64], b: &[f64]) -> Result<TTestResult> {
    let (ma, va) = mean_var(a)?;
    let (mb, vb) = mean_var(b)?;
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let df = na + nb - 2.0;
    let pooled = ((na - 1.0) * va + (nb - 1.0) * vb) / df;
    let mean_diff = ma - mb;
    let se2 = pooled * (1.0 / na + 1.0 / nb);
    if se2 == 0.0 {
        if mean_diff == 0.0 {
            return Err(StatsError::ZeroVariance);
        }
        return Ok(TTestResult {
            t: f64::INFINITY * mean_diff.signum(),
            df,
            p_value: 0.0,
            mean_diff,
        });
    }
    let t = mean_diff / se2.sqrt();
    Ok(TTestResult {
        t,
        df,
        p_value: t_two_sided_p(t, df),
        mean_diff,
    })
}

/// Paired-sample t-test (two-sided) on the per-pair differences.
///
/// # Errors
///
/// * [`StatsError::LengthMismatch`] if the samples differ in length.
/// * [`StatsError::TooFewSamples`] with fewer than two pairs.
/// * [`StatsError::ZeroVariance`] if all differences are identical and zero.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Result<TTestResult> {
    if a.len() != b.len() {
        return Err(StatsError::LengthMismatch {
            lhs: a.len(),
            rhs: b.len(),
        });
    }
    let d: Vec<f64> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
    let (md, vd) = mean_var(&d)?;
    let n = d.len() as f64;
    let df = n - 1.0;
    if vd == 0.0 {
        if md == 0.0 {
            return Err(StatsError::ZeroVariance);
        }
        return Ok(TTestResult {
            t: f64::INFINITY * md.signum(),
            df,
            p_value: 0.0,
            mean_diff: md,
        });
    }
    let t = md / (vd / n).sqrt();
    Ok(TTestResult {
        t,
        df,
        p_value: t_two_sided_p(t, df),
        mean_diff: md,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_p_near_one() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0, 4.0, 3.0, 2.0, 1.0];
        let r = welch_t_test(&a, &b).unwrap();
        assert!((r.t).abs() < 1e-12);
        assert!((r.p_value - 1.0).abs() < 1e-9);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn clearly_separated_samples_are_significant() {
        let a = [10.0, 10.1, 9.9, 10.05, 9.95];
        let b = [0.0, 0.1, -0.1, 0.05, -0.05];
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.p_value < 1e-6);
        assert!(r.significant_at(0.05));
        assert!(r.mean_diff > 9.0);
    }

    #[test]
    fn welch_known_value() {
        // Hand-computed: a = [1..5] has mean 3, var 2.5; b = [2,3,4,5,7]
        // has mean 4.2, var 3.7; se² = (2.5 + 3.7)/5 = 1.24,
        // t = -1.2/√1.24 = -1.07763; two-sided p ≈ 0.31.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 3.0, 4.0, 5.0, 7.0];
        let r = welch_t_test(&a, &b).unwrap();
        assert!((r.t - (-1.07763)).abs() < 1e-4, "t = {}", r.t);
        assert!((0.30..0.33).contains(&r.p_value), "p = {}", r.p_value);
    }

    #[test]
    fn student_known_value() {
        // Same data: pooled var = (4·2.5 + 4·3.7)/8 = 3.1,
        // se² = 3.1·(1/5 + 1/5) = 1.24, t = -1.07763, df = 8.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 3.0, 4.0, 5.0, 7.0];
        let r = student_t_test(&a, &b).unwrap();
        assert!((r.df - 8.0).abs() < 1e-12);
        assert!((r.t - (-1.07763)).abs() < 1e-4);
        assert!((0.30..0.33).contains(&r.p_value), "p = {}", r.p_value);
    }

    #[test]
    fn welch_df_between_min_and_sum() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 4.0, 9.0, 16.0, 25.0];
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.df >= 3.0 && r.df <= 7.0, "df = {}", r.df);
    }

    #[test]
    fn paired_detects_consistent_shift() {
        let a = [5.0, 6.0, 7.0, 8.0];
        let b = [4.5, 5.5, 6.5, 7.5];
        let r = paired_t_test(&a, &b).unwrap();
        // Every pair differs by exactly 0.5 with tiny variance: but variance
        // of differences is zero here -> infinite t, p = 0.
        assert_eq!(r.p_value, 0.0);
        assert_eq!(r.mean_diff, 0.5);
    }

    #[test]
    fn paired_with_noise() {
        let a = [5.0, 6.1, 7.0, 8.2, 9.0, 10.1];
        let b = [4.0, 5.0, 6.2, 7.0, 8.1, 9.0];
        let r = paired_t_test(&a, &b).unwrap();
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn error_conditions() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_err());
        assert!(paired_t_test(&[1.0, 2.0], &[1.0]).is_err());
        assert!(matches!(
            welch_t_test(&[2.0, 2.0], &[2.0, 2.0]),
            Err(StatsError::ZeroVariance)
        ));
    }

    #[test]
    fn constant_but_different_samples() {
        let r = welch_t_test(&[1.0, 1.0, 1.0], &[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(r.p_value, 0.0);
        assert!(r.t.is_infinite() && r.t < 0.0);
    }

    #[test]
    fn symmetry_under_swap() {
        let a = [1.0, 3.0, 2.0, 5.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let r1 = welch_t_test(&a, &b).unwrap();
        let r2 = welch_t_test(&b, &a).unwrap();
        assert!((r1.t + r2.t).abs() < 1e-12);
        assert!((r1.p_value - r2.p_value).abs() < 1e-12);
    }
}
