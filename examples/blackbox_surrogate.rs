//! Case 2 end-to-end (paper Sec. IV): black-box surrogate attack with and
//! without the power side channel folded into the training loss (Eq. 9),
//! against a label-only digits oracle.
//!
//! Run with: `cargo run --release --example blackbox_surrogate`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_power_attacks::attacks::blackbox::{run_blackbox_attack, BlackBoxConfig};
use xbar_power_attacks::attacks::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_power_attacks::attacks::report::{fmt, format_table};
use xbar_power_attacks::data::synth::digits::DigitsConfig;
use xbar_power_attacks::nn::activation::Activation;
use xbar_power_attacks::nn::loss::Loss;
use xbar_power_attacks::nn::network::SingleLayerNet;
use xbar_power_attacks::nn::train::{train, SgdConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Victim: a linear digits classifier (the paper's Sec. IV setting).
    let dataset = DigitsConfig::default().num_samples(2000).seed(5).generate();
    let split = dataset.split_frac(0.85)?;
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut net = SingleLayerNet::new_random(784, 10, Activation::Identity, &mut rng);
    let sgd = SgdConfig {
        learning_rate: 0.01,
        epochs: 25,
        ..SgdConfig::default()
    };
    train(&mut net, &split.train, Loss::Mse, &sgd, &mut rng)?;

    println!("black-box FGSM(ε=0.1) via surrogate, label-only oracle access\n");
    let mut rows = Vec::new();
    for &queries in &[100usize, 400] {
        for &lambda in &[0.0, 10.0] {
            let mut oracle = Oracle::new(
                net.clone(),
                &OracleConfig::ideal().with_access(OutputAccess::LabelOnly),
                77,
            )?;
            // Paired comparison: same query sample for both λ values.
            let mut attack_rng = ChaCha8Rng::seed_from_u64(queries as u64);
            let mut cfg = BlackBoxConfig::default()
                .with_num_queries(queries)
                .with_power_weight(lambda)
                .with_fgsm_eps(0.1);
            cfg.surrogate.sgd.epochs = (38_400 / queries).clamp(60, 2000);
            let (out, _surrogate) = run_blackbox_attack(
                &mut oracle,
                &split.train,
                &split.test,
                &cfg,
                &mut attack_rng,
            )?;
            rows.push(vec![
                queries.to_string(),
                format!("{lambda}"),
                fmt(out.surrogate_test_accuracy, 3),
                fmt(out.oracle_clean_accuracy, 3),
                fmt(out.oracle_adversarial_accuracy, 3),
                fmt(out.degradation(), 3),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &[
                "queries",
                "power λ",
                "surrogate acc",
                "oracle clean",
                "oracle adv",
                "degradation",
            ],
            &rows
        )
    );
    println!("(λ > 0 folds the power side channel into the surrogate loss, Eq. 9;");
    println!(" a larger degradation at equal queries = better query efficiency.)");
    Ok(())
}
