//! Defender's view: using the same current signatures the attacker
//! exploits to *detect* the attack (the DetectX idea, the paper's
//! reference [13]).
//!
//! Run with: `cargo run --release --example detect_defense`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_power_attacks::attacks::detect::{PerClassDetector, PowerAnomalyDetector};
use xbar_power_attacks::attacks::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_power_attacks::attacks::pixel_attack::{
    single_pixel_attack_batch, PixelAttackMethod, PixelAttackResources,
};
use xbar_power_attacks::attacks::probe::probe_column_norms;
use xbar_power_attacks::attacks::report::{fmt, format_table};
use xbar_power_attacks::data::synth::digits::DigitsConfig;
use xbar_power_attacks::nn::activation::Activation;
use xbar_power_attacks::nn::loss::Loss;
use xbar_power_attacks::nn::network::SingleLayerNet;
use xbar_power_attacks::nn::train::{train, SgdConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Victim and data.
    let ds = DigitsConfig::default()
        .num_samples(1200)
        .seed(13)
        .generate();
    let split = ds.split_frac(0.8)?;
    let mut rng = ChaCha8Rng::seed_from_u64(14);
    let mut net = SingleLayerNet::new_random(784, 10, Activation::Softmax, &mut rng);
    let sgd = SgdConfig {
        learning_rate: 0.05,
        epochs: 15,
        ..SgdConfig::default()
    };
    train(&mut net, &split.train, Loss::CrossEntropy, &sgd, &mut rng)?;
    let mut oracle = Oracle::new(
        net.clone(),
        &OracleConfig::ideal().with_access(OutputAccess::None),
        15,
    )?;

    // Defender calibrates current signatures on clean traffic — both a
    // single global band and per-predicted-class bands (DetectX-style).
    let clean_rows: Vec<&[f64]> = (0..split.train.len())
        .map(|i| split.train.input(i))
        .collect();
    let clean_powers: Vec<f64> = oracle
        .query_batch(&clean_rows)?
        .iter()
        .map(|r| r.observation.power)
        .collect();
    let global = PowerAnomalyDetector::calibrate(&clean_powers, 3.0)?;
    let clean_preds = oracle.eval_predict_batch(split.train.inputs())?;
    let per_class_samples: Vec<(usize, f64)> = clean_preds
        .iter()
        .zip(&clean_powers)
        .map(|(&c, &p)| (c, p))
        .collect();
    let per_class = PerClassDetector::calibrate(&per_class_samples, 10, 3.0)?;
    println!(
        "global band: clean power {:.1} ± {:.1}; per-class bands calibrated for 10 classes\n",
        global.mean(),
        global.std()
    );

    // Attacker probes and attacks at several strengths; defender measures
    // detection vs miss under both calibrations.
    let norms = probe_column_norms(&mut oracle, 1.0, 1)?;
    let targets = split.test.one_hot_targets();
    let observe = |oracle: &mut Oracle,
                   inputs: &xbar_power_attacks::linalg::Matrix|
     -> Result<Vec<(usize, f64)>, Box<dyn std::error::Error>> {
        let preds = oracle.eval_predict_batch(inputs)?;
        let rows: Vec<&[f64]> = (0..inputs.rows()).map(|i| inputs.row(i)).collect();
        let records = oracle.query_batch(&rows)?;
        Ok(preds
            .iter()
            .zip(&records)
            .map(|(&c, r)| (c, r.observation.power))
            .collect())
    };
    let held_out = observe(&mut oracle, split.test.inputs())?;
    let fp_global = global.detection_rate(&held_out.iter().map(|&(_, p)| p).collect::<Vec<f64>>());
    let fp_class = per_class.detection_rate(&held_out);
    let mut rows = Vec::new();
    for strength in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let adv = single_pixel_attack_batch(
            PixelAttackMethod::NormPlus,
            split.test.inputs(),
            &targets,
            PixelAttackResources::norms_only(&norms),
            strength,
            &mut rng,
        )?;
        let adv_obs = observe(&mut oracle, &adv)?;
        let adv_acc = oracle.eval_accuracy(&adv, split.test.labels())?;
        let tp_global =
            global.detection_rate(&adv_obs.iter().map(|&(_, p)| p).collect::<Vec<f64>>());
        let tp_class = per_class.detection_rate(&adv_obs);
        rows.push(vec![
            format!("{strength}"),
            fmt(adv_acc, 3),
            fmt(tp_global, 3),
            fmt(tp_class, 3),
        ]);
    }
    println!("norm-guided single-pixel attack vs current-signature detection:");
    println!(
        "{}",
        format_table(
            &[
                "strength",
                "attacked acc",
                "global detect",
                "per-class detect"
            ],
            &rows
        )
    );
    println!("false positives on clean traffic: global {fp_global:.3}, per-class {fp_class:.3}");

    // The probing phase itself is far more exposed than the evasion
    // phase: basis inputs e_j draw a tiny, wildly out-of-distribution
    // current.
    let n = oracle.num_inputs();
    let mut probe_hits = 0;
    for j in (0..n).step_by(16) {
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        let p = oracle.query(&e)?.observation.power;
        if global.is_anomalous(p) {
            probe_hits += 1;
        }
    }
    println!(
        "\nprobe-phase detection: {probe_hits}/{} basis queries flagged by the global band",
        n.div_ceil(16)
    );
    println!("Takeaway: per-class conditioning tightens the bands (~4x detection at");
    println!("strength 8) but single-pixel evasion stays mostly below image traffic's");
    println!("power noise floor — whereas the Case-1 *probing* phase, whose basis");
    println!("inputs draw tiny currents, is trivially detectable.");
    Ok(())
}
