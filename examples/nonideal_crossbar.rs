//! Beyond the paper's ideal analysis: deploy the same victim on
//! progressively less ideal NVM devices and see what happens to (a) the
//! victim's own accuracy, (b) the power probe's fidelity, and (c) a
//! power-obfuscation defense.
//!
//! Run with: `cargo run --release --example nonideal_crossbar`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_power_attacks::attacks::defense::{DefendedOracle, PowerDefense};
use xbar_power_attacks::attacks::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_power_attacks::attacks::probe::probe_column_norms;
use xbar_power_attacks::attacks::report::{fmt, format_table};
use xbar_power_attacks::crossbar::device::DeviceModel;
use xbar_power_attacks::data::synth::digits::DigitsConfig;
use xbar_power_attacks::nn::activation::Activation;
use xbar_power_attacks::nn::loss::Loss;
use xbar_power_attacks::nn::network::SingleLayerNet;
use xbar_power_attacks::nn::train::{train, SgdConfig};
use xbar_power_attacks::stats::correlation::pearson;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = DigitsConfig::default().num_samples(1200).seed(9).generate();
    let split = dataset.split_frac(0.85)?;
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let mut net = SingleLayerNet::new_random(784, 10, Activation::Softmax, &mut rng);
    let sgd = SgdConfig {
        learning_rate: 0.05,
        epochs: 20,
        ..SgdConfig::default()
    };
    train(&mut net, &split.train, Loss::CrossEntropy, &sgd, &mut rng)?;

    // Device ablation.
    let devices: Vec<(&str, DeviceModel)> = vec![
        ("ideal", DeviceModel::ideal()),
        ("8 conductance levels", DeviceModel::ideal().with_levels(8)),
        (
            "programming variation 10%",
            DeviceModel::ideal().with_program_sigma(0.1),
        ),
        (
            "2% stuck-at faults",
            DeviceModel::ideal().with_stuck_rate(0.02),
        ),
    ];
    let mut rows = Vec::new();
    for (label, device) in devices {
        let cfg = OracleConfig::ideal()
            .with_access(OutputAccess::None)
            .with_device(device);
        let mut oracle = Oracle::new(net.clone(), &cfg, 55)?;
        let acc = oracle.eval_accuracy(split.test.inputs(), split.test.labels())?;
        let probed = probe_column_norms(&mut oracle, 1.0, 1)?;
        let r = pearson(&probed, &oracle.true_column_norms()).unwrap_or(0.0);
        rows.push(vec![label.to_string(), fmt(acc, 3), fmt(r, 4)]);
    }
    println!("device non-idealities (victim accuracy and probe fidelity):");
    println!(
        "{}",
        format_table(&["device", "deployed accuracy", "probe corr r"], &rows)
    );

    // Defense demo: randomised dummy conductances break the probe.
    let oracle = Oracle::new(
        net.clone(),
        &OracleConfig::ideal().with_access(OutputAccess::None),
        56,
    )?;
    let mean_norm = net.column_l1_norms().iter().sum::<f64>() / 784.0;
    let mut defended = DefendedOracle::new(
        oracle,
        PowerDefense::RandomizedDummy {
            magnitude: 2.0 * mean_norm,
        },
        57,
    )?;
    let probed = defended.probe_column_norms(1.0, 1)?;
    let r = pearson(&probed, &defended.inner().true_column_norms()).unwrap_or(0.0);
    println!("with randomised dummy conductances, probe correlation drops to r = {r:.3}");
    Ok(())
}
