//! Case 1 end-to-end (paper Sec. III): the attacker sees only the
//! crossbar's power, probes the weight-column 1-norms, and runs all five
//! single-pixel attack methods of Fig. 4 against a digits classifier —
//! including the query-efficient hill-climb search for the largest norm.
//!
//! Run with: `cargo run --release --example power_probe_attack`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_power_attacks::attacks::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_power_attacks::attacks::pixel_attack::{
    single_pixel_attack_batch, PixelAttackMethod, PixelAttackResources,
};
use xbar_power_attacks::attacks::probe::{argmax_norm_hill_climb, probe_column_norms};
use xbar_power_attacks::attacks::report::{ascii_heatmap, fmt, format_table};
use xbar_power_attacks::data::synth::digits::DigitsConfig;
use xbar_power_attacks::linalg::vec_ops;
use xbar_power_attacks::nn::activation::Activation;
use xbar_power_attacks::nn::loss::Loss;
use xbar_power_attacks::nn::network::SingleLayerNet;
use xbar_power_attacks::nn::train::{train, SgdConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Victim: a softmax digit classifier on a 28x28 canvas.
    let dataset = DigitsConfig::default().num_samples(1500).seed(3).generate();
    let split = dataset.split_frac(0.85)?;
    let shape = split.test.image_shape().expect("digits are images");
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut net = SingleLayerNet::new_random(784, 10, Activation::Softmax, &mut rng);
    let sgd = SgdConfig {
        learning_rate: 0.05,
        epochs: 20,
        ..SgdConfig::default()
    };
    train(&mut net, &split.train, Loss::CrossEntropy, &sgd, &mut rng)?;

    let mut oracle = Oracle::new(
        net.clone(),
        &OracleConfig::ideal().with_access(OutputAccess::None),
        11,
    )?;
    let clean = oracle.eval_accuracy(split.test.inputs(), split.test.labels())?;
    println!("clean test accuracy: {clean:.3}\n");

    // Full probe: one query per pixel.
    let norms = probe_column_norms(&mut oracle, 1.0, 1)?;
    println!(
        "power-probed 1-norm map ({} queries) — bright pixels are the\nattack-relevant ones:",
        oracle.query_count()
    );
    println!("{}", ascii_heatmap(&norms, shape, 0));

    // Query-efficient alternative: hill climbing on the (smooth) map.
    oracle.reset_query_count();
    let search = argmax_norm_hill_climb(&mut oracle, shape, 6, 120, &mut rng)?;
    let full_argmax = vec_ops::argmax(&norms);
    println!(
        "hill-climb found pixel {} (norm {:.3}) in {} queries; full-scan argmax is {} (norm {:.3})\n",
        search.best_index,
        search.best_norm,
        search.queries_used,
        full_argmax,
        norms[full_argmax],
    );

    // All five Fig. 4 methods at one attack strength.
    let strength = 4.0;
    let targets = split.test.one_hot_targets();
    let mut rows = Vec::new();
    for method in PixelAttackMethod::all() {
        let adv = single_pixel_attack_batch(
            method,
            split.test.inputs(),
            &targets,
            PixelAttackResources::full(&norms, &net, Loss::CrossEntropy),
            strength,
            &mut rng,
        )?;
        let acc = oracle.eval_accuracy(&adv, split.test.labels())?;
        rows.push(vec![
            method.paper_label().to_string(),
            fmt(acc, 3),
            fmt(clean - acc, 3),
        ]);
    }
    println!("single-pixel attacks at strength {strength}:");
    println!(
        "{}",
        format_table(&["method", "accuracy", "degradation"], &rows)
    );
    Ok(())
}
