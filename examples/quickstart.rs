//! Quickstart: train a tiny victim, deploy it on a simulated NVM
//! crossbar, and watch the power side channel leak its weight structure.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_power_attacks::attacks::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_power_attacks::attacks::pixel_attack::{
    single_pixel_attack_batch, PixelAttackMethod, PixelAttackResources,
};
use xbar_power_attacks::attacks::probe::probe_column_norms;
use xbar_power_attacks::data::synth::blobs::BlobsConfig;
use xbar_power_attacks::nn::activation::Activation;
use xbar_power_attacks::nn::loss::Loss;
use xbar_power_attacks::nn::network::SingleLayerNet;
use xbar_power_attacks::nn::train::{train, SgdConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train a small victim classifier.
    let dataset = BlobsConfig::new(4, 20).num_samples(400).seed(7).generate();
    let split = dataset.split_frac(0.8)?;
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut net = SingleLayerNet::new_random(20, 4, Activation::Identity, &mut rng);
    train(
        &mut net,
        &split.train,
        Loss::Mse,
        &SgdConfig::default(),
        &mut rng,
    )?;

    // 2. Deploy it on an (ideal) crossbar behind a power-only oracle —
    //    the attacker sees no outputs at all (the paper's Case 1).
    let mut oracle = Oracle::new(
        net.clone(),
        &OracleConfig::ideal().with_access(OutputAccess::None),
        42,
    )?;
    let clean_acc = oracle.eval_accuracy(split.test.inputs(), split.test.labels())?;
    println!("victim deployed; clean test accuracy: {clean_acc:.3}");

    // 3. Probe the power side channel: one basis input per feature
    //    recovers every weight-column 1-norm (paper Eq. 5).
    let probed = probe_column_norms(&mut oracle, 1.0, 1)?;
    let truth = net.column_l1_norms();
    let max_err = probed
        .iter()
        .zip(&truth)
        .map(|(p, t)| (p - t).abs())
        .fold(0.0_f64, f64::max);
    println!(
        "probed {} column 1-norms in {} queries (max error {max_err:.2e})",
        probed.len(),
        oracle.query_count()
    );

    // 4. Use the leak: attack the most power-hungry input feature.
    let targets = split.test.one_hot_targets();
    let adv = single_pixel_attack_batch(
        PixelAttackMethod::NormPlus,
        split.test.inputs(),
        &targets,
        PixelAttackResources::norms_only(&probed),
        1.5,
        &mut rng,
    )?;
    let adv_acc = oracle.eval_accuracy(&adv, split.test.labels())?;
    println!("accuracy after power-guided single-feature attack: {adv_acc:.3}");
    println!("degradation: {:.3}", clean_acc - adv_acc);
    Ok(())
}
