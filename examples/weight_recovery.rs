//! Sec. IV exact-recovery demonstrations: with raw output access, the
//! weights of a linear oracle follow from `β e_j` probes or, for any
//! spanning query set with `Q ≥ N`, from least squares — the regimes
//! where the paper notes power information is redundant.
//!
//! Run with: `cargo run --release --example weight_recovery`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_power_attacks::attacks::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_power_attacks::attacks::recovery::{
    recover_columns_by_basis_probes, recover_weights_least_squares, recover_weights_ridge,
    relative_error,
};
use xbar_power_attacks::linalg::Matrix;
use xbar_power_attacks::nn::activation::Activation;
use xbar_power_attacks::nn::network::SingleLayerNet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let n = 64;
    let w = Matrix::random_uniform(10, n, -1.0, 1.0, &mut rng);
    let net = SingleLayerNet::from_weights(w.clone(), Activation::Identity);

    // 1. Basis probing: N raw-output queries -> exact weights.
    let mut oracle = Oracle::new(
        net.clone(),
        &OracleConfig::ideal().with_access(OutputAccess::Raw),
        9,
    )?;
    let recovered = recover_columns_by_basis_probes(&mut oracle, 0.5)?;
    println!(
        "basis probes: {} queries, relative error {:.2e}",
        oracle.query_count(),
        relative_error(&recovered, &w)?
    );

    // 2. Least squares from arbitrary spanning queries.
    let u = Matrix::random_uniform(2 * n, n, 0.0, 1.0, &mut rng);
    let y = u.matmul(&w.transpose());
    let ls = recover_weights_least_squares(&u, &y)?;
    println!(
        "least squares (Q = {} >= N = {n}): relative error {:.2e}",
        2 * n,
        relative_error(&ls, &w)?
    );

    // 3. Underdetermined (Q < N) fails outright...
    let u_small = Matrix::random_uniform(n / 2, n, 0.0, 1.0, &mut rng);
    let y_small = u_small.matmul(&w.transpose());
    match recover_weights_least_squares(&u_small, &y_small) {
        Err(e) => println!("least squares (Q = {} < N = {n}): {e}", n / 2),
        Ok(_) => unreachable!("underdetermined systems must fail"),
    }

    // ...while ridge still fits the observed queries (but not the truth):
    let ridge = recover_weights_ridge(&u_small, &y_small, 1e-6)?;
    println!(
        "ridge     (Q = {} < N = {n}): relative error {:.3} (power info is\n\
         exactly for this regime — see the fig5 experiment)",
        n / 2,
        relative_error(&ridge, &w)?
    );
    Ok(())
}
