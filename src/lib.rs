//! # xbar-power-attacks
//!
//! A from-scratch Rust reproduction of *"Enhancing Adversarial Attacks on
//! Single-Layer NVM Crossbar-Based Neural Networks with Power Consumption
//! Information"* (Cory Merkel, SOCC 2022).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`linalg`] — dense matrices, decompositions, least squares, pinv.
//! * [`stats`] — correlation, t-tests, run aggregation.
//! * [`data`] — datasets: procedural MNIST/CIFAR-10 stand-ins, IDX I/O.
//! * [`nn`] — single-layer (and multi-layer) networks, SGD, input
//!   sensitivity.
//! * [`crossbar`] — the NVM crossbar simulator and its power side channel.
//! * [`attacks`] — the paper's contribution: power-probing, single-pixel
//!   attacks, surrogate training with the power loss, black-box FGSM,
//!   weight recovery, and defenses.
//!
//! # Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use xbar_power_attacks::attacks::oracle::{Oracle, OracleConfig, OutputAccess};
//! use xbar_power_attacks::attacks::probe::probe_column_norms;
//! use xbar_power_attacks::nn::activation::Activation;
//! use xbar_power_attacks::nn::network::SingleLayerNet;
//!
//! // A victim network deployed on an (ideal) crossbar...
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let net = SingleLayerNet::new_random(16, 4, Activation::Identity, &mut rng);
//! let truth = net.column_l1_norms();
//! let mut oracle = Oracle::new(
//!     net,
//!     &OracleConfig::ideal().with_access(OutputAccess::None),
//!     1,
//! )?;
//!
//! // ...leaks its weight-column 1-norms through the power side channel.
//! let probed = probe_column_norms(&mut oracle, 1.0, 1)?;
//! for (p, t) in probed.iter().zip(&truth) {
//!     assert!((p - t).abs() < 1e-9);
//! }
//! # Ok::<(), xbar_power_attacks::attacks::AttackError>(())
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the binaries that regenerate every table and figure
//! of the paper.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub use xbar_core as attacks;
pub use xbar_crossbar as crossbar;
pub use xbar_data as data;
pub use xbar_linalg as linalg;
pub use xbar_nn as nn;
pub use xbar_stats as stats;
