//! Cross-crate consistency tests: the crossbar simulator, the network,
//! and the oracle must agree wherever the paper's ideal analysis says
//! they should.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_power_attacks::attacks::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_power_attacks::crossbar::array::CrossbarArray;
use xbar_power_attacks::crossbar::device::DeviceModel;
use xbar_power_attacks::crossbar::power::PowerModel;
use xbar_power_attacks::crossbar::tile::TiledCrossbar;
use xbar_power_attacks::linalg::Matrix;
use xbar_power_attacks::nn::activation::Activation;
use xbar_power_attacks::nn::network::SingleLayerNet;

fn random_weights(m: usize, n: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Matrix::random_uniform(m, n, -1.0, 1.0, &mut rng)
}

#[test]
fn ideal_oracle_predictions_equal_float_network() {
    let w = random_weights(10, 50, 1);
    let net = SingleLayerNet::from_weights(w, Activation::Softmax);
    let oracle = Oracle::new(net.clone(), &OracleConfig::ideal(), 1).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let inputs = Matrix::random_uniform(40, 50, 0.0, 1.0, &mut rng);
    let from_oracle = oracle.eval_predict_batch(&inputs).unwrap();
    let from_net = net.predict_batch(&inputs).unwrap();
    assert_eq!(from_oracle, from_net);
}

#[test]
fn eq5_power_identity_holds_through_the_whole_stack() {
    // network weights -> mapping -> crossbar -> power model -> oracle
    // calibration must return exactly Σ_j u_j ‖W[:,j]‖₁.
    let w = random_weights(8, 30, 3);
    let norms = w.col_l1_norms();
    let net = SingleLayerNet::from_weights(w, Activation::Identity);
    let mut oracle = Oracle::new(
        net,
        &OracleConfig::ideal().with_access(OutputAccess::None),
        3,
    )
    .unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    for _ in 0..10 {
        let u: Vec<f64> = (0..30).map(|_| rng.gen_range(0.0..1.0)).collect();
        let p = oracle.query(&u).unwrap().observation.power;
        let want: f64 = u.iter().zip(&norms).map(|(&a, &b)| a * b).sum();
        assert!((p - want).abs() < 1e-9);
    }
}

#[test]
fn tiled_and_monolithic_crossbars_agree_on_mvm_and_power() {
    let w = random_weights(12, 100, 5);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let mono = CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng).unwrap();
    let tiled = TiledCrossbar::program(&w, 5, 32, &DeviceModel::ideal(), &mut rng).unwrap();
    let w_max = w.max_abs();
    let v: Vec<f64> = (0..100).map(|j| (j as f64 * 0.03).fract()).collect();
    let mono_out = mono.mvm(&v);
    let tiled_out = tiled.mvm(&v).unwrap();
    for (a, b) in mono_out.iter().zip(&tiled_out) {
        assert!((a - b * w_max).abs() < 1e-9);
    }
    let pm = PowerModel::default();
    let p_mono = pm.exact(&mono, &v).unwrap();
    let p_tiled = pm.exact_tiled(&tiled, &v).unwrap();
    assert!((p_mono - p_tiled).abs() < 1e-9);
}

#[test]
fn nonideal_deployment_changes_weights_but_probe_tracks_deployment() {
    let w = random_weights(6, 40, 7);
    let net = SingleLayerNet::from_weights(w.clone(), Activation::Identity);
    let cfg = OracleConfig::ideal()
        .with_access(OutputAccess::None)
        .with_device(DeviceModel::ideal().with_levels(4));
    let mut oracle = Oracle::new(net, &cfg, 7).unwrap();
    // Quantised devices distort the weights...
    let deployed = oracle.true_column_norms();
    let original = w.col_l1_norms();
    assert!(deployed
        .iter()
        .zip(&original)
        .any(|(d, o)| (d - o).abs() > 1e-6));
    // ...but the probe reads the *deployed* values exactly.
    let probed =
        xbar_power_attacks::attacks::probe::probe_column_norms(&mut oracle, 1.0, 1).unwrap();
    for (p, d) in probed.iter().zip(&deployed) {
        assert!((p - d).abs() < 1e-9);
    }
}

#[test]
fn measurement_noise_propagates_to_calibrated_power_at_the_right_scale() {
    let w = random_weights(5, 20, 8);
    let net = SingleLayerNet::from_weights(w.clone(), Activation::Identity);
    let sigma = 0.1;
    let cfg = OracleConfig::ideal()
        .with_access(OutputAccess::None)
        .with_power(PowerModel::default().with_noise(sigma));
    let mut oracle = Oracle::new(net, &cfg, 8).unwrap();
    // The calibration divides by the mapping scale k, so calibrated noise
    // std is sigma / k.
    let k = (0..1)
        .map(|_| ())
        .map(|_| 1.0 / w.max_abs())
        .next()
        .unwrap();
    let u = vec![0.5; 20];
    let truth: f64 = w.col_l1_norms().iter().map(|n| 0.5 * n).sum();
    let n = 4000;
    let rows: Vec<&[f64]> = (0..n).map(|_| u.as_slice()).collect();
    let samples: Vec<f64> = oracle
        .query_batch(&rows)
        .unwrap()
        .iter()
        .map(|r| r.observation.power)
        .collect();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
    assert!((mean - truth).abs() < 0.05);
    let expected_std = sigma / k;
    assert!(
        (var.sqrt() - expected_std).abs() < 0.2 * expected_std,
        "std {} vs expected {}",
        var.sqrt(),
        expected_std
    );
}

use rand::Rng;
