//! Cross-crate integration tests: the full pipelines of both attack
//! cases, exercised end to end on small instances.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_power_attacks::attacks::blackbox::{run_blackbox_attack, BlackBoxConfig};
use xbar_power_attacks::attacks::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_power_attacks::attacks::pixel_attack::{
    single_pixel_attack_batch, PixelAttackMethod, PixelAttackResources,
};
use xbar_power_attacks::attacks::probe::probe_column_norms;
use xbar_power_attacks::attacks::recovery::{recover_columns_by_basis_probes, relative_error};
use xbar_power_attacks::data::synth::digits::DigitsConfig;
use xbar_power_attacks::data::Dataset;
use xbar_power_attacks::nn::activation::Activation;
use xbar_power_attacks::nn::loss::Loss;
use xbar_power_attacks::nn::network::SingleLayerNet;
use xbar_power_attacks::nn::train::{train, SgdConfig};

/// Small trained digits victim shared by the tests.
fn digits_victim(head: Activation, loss: Loss, seed: u64) -> (SingleLayerNet, Dataset, Dataset) {
    let ds = DigitsConfig::default()
        .num_samples(600)
        .seed(seed)
        .generate();
    let split = ds.split_frac(0.8).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut net = SingleLayerNet::new_random(784, 10, head, &mut rng);
    let sgd = SgdConfig {
        learning_rate: if head == Activation::Softmax {
            0.05
        } else {
            0.01
        },
        epochs: 15,
        ..SgdConfig::default()
    };
    train(&mut net, &split.train, loss, &sgd, &mut rng).unwrap();
    (net, split.train, split.test)
}

#[test]
fn case1_probe_then_attack_beats_random_pixel() {
    let (net, _, test) = digits_victim(Activation::Softmax, Loss::CrossEntropy, 1);
    let mut oracle = Oracle::new(
        net.clone(),
        &OracleConfig::ideal().with_access(OutputAccess::None),
        1,
    )
    .unwrap();

    // The attacker never sees an output — only power.
    let norms = probe_column_norms(&mut oracle, 1.0, 1).unwrap();
    assert_eq!(oracle.query_count(), 784);

    // Probed norms are the deployed truth for an ideal crossbar.
    let truth = oracle.true_column_norms();
    for (p, t) in norms.iter().zip(&truth) {
        assert!((p - t).abs() < 1e-9);
    }

    // Norm-guided attack outperforms a random-pixel attack on average.
    let targets = test.one_hot_targets();
    let strength = 5.0;
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let reps = 5;
    let mut rd_acc = 0.0;
    let mut rp_acc = 0.0;
    for _ in 0..reps {
        let rd = single_pixel_attack_batch(
            PixelAttackMethod::NormRandom,
            test.inputs(),
            &targets,
            PixelAttackResources::norms_only(&norms),
            strength,
            &mut rng,
        )
        .unwrap();
        rd_acc += oracle.eval_accuracy(&rd, test.labels()).unwrap();
        let rp = single_pixel_attack_batch(
            PixelAttackMethod::RandomPixel,
            test.inputs(),
            &targets,
            PixelAttackResources::norms_only(&norms),
            strength,
            &mut rng,
        )
        .unwrap();
        rp_acc += oracle.eval_accuracy(&rp, test.labels()).unwrap();
    }
    assert!(
        rd_acc < rp_acc,
        "norm-guided ({}) should beat random pixel ({})",
        rd_acc / reps as f64,
        rp_acc / reps as f64
    );
}

#[test]
fn case2_blackbox_attack_beats_clean_accuracy() {
    let (net, train_pool, test) = digits_victim(Activation::Identity, Loss::Mse, 3);
    let mut oracle = Oracle::new(
        net,
        &OracleConfig::ideal().with_access(OutputAccess::Raw),
        3,
    )
    .unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let cfg = BlackBoxConfig::default()
        .with_num_queries(200)
        .with_fgsm_eps(0.2);
    let (out, surrogate) =
        run_blackbox_attack(&mut oracle, &train_pool, &test, &cfg, &mut rng).unwrap();
    assert!(out.oracle_clean_accuracy > 0.7);
    assert!(out.degradation() > 0.15, "attack should bite: {:?}", out);
    assert!(out.surrogate_test_accuracy > 0.5);
    assert_eq!(surrogate.num_inputs(), 784);
    assert_eq!(out.queries_used, 200);
}

#[test]
fn power_loss_changes_the_surrogate() {
    let (net, train_pool, test) = digits_victim(Activation::Identity, Loss::Mse, 5);
    let run = |lambda: f64| {
        let mut oracle = Oracle::new(
            net.clone(),
            &OracleConfig::ideal().with_access(OutputAccess::LabelOnly),
            5,
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let cfg = BlackBoxConfig::default()
            .with_num_queries(150)
            .with_power_weight(lambda);
        let (_, surrogate) =
            run_blackbox_attack(&mut oracle, &train_pool, &test, &cfg, &mut rng).unwrap();
        surrogate
    };
    let s0 = run(0.0);
    let s1 = run(10.0);
    // Same query sample and seeds — any difference is the power loss.
    assert!(!s0.weights().approx_eq(s1.weights(), 1e-9));
}

#[test]
fn recovery_through_oracle_is_exact_and_attack_matches_white_box() {
    let (net, _, test) = digits_victim(Activation::Identity, Loss::Mse, 7);
    let mut oracle = Oracle::new(
        net.clone(),
        &OracleConfig::ideal().with_access(OutputAccess::Raw),
        7,
    )
    .unwrap();
    let recovered = recover_columns_by_basis_probes(&mut oracle, 1.0).unwrap();
    assert!(relative_error(&recovered, net.weights()).unwrap() < 1e-9);

    // A surrogate built from the recovered weights attacks as well as the
    // white-box model itself.
    let stolen = SingleLayerNet::from_weights(recovered, Activation::Identity);
    let targets = test.one_hot_targets();
    let adv_stolen = xbar_power_attacks::attacks::fgsm::fgsm_batch(
        &stolen,
        test.inputs(),
        &targets,
        Loss::Mse,
        0.1,
        xbar_power_attacks::attacks::fgsm::BoxConstraint::None,
    )
    .unwrap();
    let adv_white = xbar_power_attacks::attacks::fgsm::fgsm_batch(
        &net,
        test.inputs(),
        &targets,
        Loss::Mse,
        0.1,
        xbar_power_attacks::attacks::fgsm::BoxConstraint::None,
    )
    .unwrap();
    assert!(adv_stolen.approx_eq(&adv_white, 1e-9));
}

#[test]
fn query_budget_cuts_off_mid_probe() {
    let (net, _, _) = digits_victim(Activation::Identity, Loss::Mse, 9);
    let cfg = OracleConfig::ideal()
        .with_access(OutputAccess::None)
        .with_query_budget(100);
    let mut oracle = Oracle::new(net, &cfg, 9).unwrap();
    let err = probe_column_norms(&mut oracle, 1.0, 1).unwrap_err();
    assert!(err.to_string().contains("budget"));
    // Batched queries consume the budget all-or-nothing: the probe's
    // 784-query batch is rejected wholesale, so nothing was spent and
    // the remaining budget still serves smaller queries.
    assert_eq!(oracle.query_count(), 0);
    let u = vec![0.0; oracle.num_inputs()];
    oracle.query(&u).unwrap();
    assert_eq!(oracle.query_count(), 1);
}
