//! Cross-crate property-based tests: the paper's analytical identities
//! must hold for *arbitrary* weight matrices and inputs, not just the
//! ones in the examples.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_power_attacks::attacks::fgsm::{fgsm_batch, BoxConstraint};
use xbar_power_attacks::attacks::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_power_attacks::attacks::probe::probe_column_norms;
use xbar_power_attacks::attacks::recovery::{recover_weights_least_squares, relative_error};
use xbar_power_attacks::crossbar::array::CrossbarArray;
use xbar_power_attacks::crossbar::device::DeviceModel;
use xbar_power_attacks::linalg::Matrix;
use xbar_power_attacks::nn::activation::Activation;
use xbar_power_attacks::nn::loss::Loss;
use xbar_power_attacks::nn::network::SingleLayerNet;

/// Deterministic random matrix from a seed with at least one nonzero.
fn seeded_weights(m: usize, n: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut w = Matrix::random_uniform(m, n, -1.0, 1.0, &mut rng);
    if w.max_abs() == 0.0 {
        w[(0, 0)] = 1.0;
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eq. 5/6: the probe recovers the exact column 1-norms of any weight
    /// matrix deployed on an ideal crossbar.
    #[test]
    fn probe_recovers_arbitrary_weight_norms(
        m in 1usize..8,
        n in 1usize..12,
        seed in any::<u64>(),
        beta in prop::sample::select(vec![0.25, 0.5, 1.0, 2.0]),
    ) {
        let w = seeded_weights(m, n, seed);
        let norms = w.col_l1_norms();
        let net = SingleLayerNet::from_weights(w, Activation::Identity);
        let mut oracle = Oracle::new(
            net,
            &OracleConfig::ideal().with_access(OutputAccess::None),
            seed,
        ).unwrap();
        let probed = probe_column_norms(&mut oracle, beta, 1).unwrap();
        for (p, t) in probed.iter().zip(&norms) {
            prop_assert!((p - t).abs() < 1e-8, "{p} vs {t}");
        }
    }

    /// The crossbar MVM equals the exact matrix product for ideal devices,
    /// for any weights and input.
    #[test]
    fn ideal_crossbar_is_exact(
        m in 1usize..6,
        n in 1usize..10,
        seed in any::<u64>(),
    ) {
        let w = seeded_weights(m, n, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 1);
        let xbar = CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng).unwrap();
        let v: Vec<f64> = (0..n).map(|j| ((j as f64) * 0.37 + seed as f64 * 1e-3).fract()).collect();
        let got = xbar.mvm(&v);
        let want = w.matvec(&v);
        for (g, e) in got.iter().zip(&want) {
            prop_assert!((g - e).abs() < 1e-9);
        }
    }

    /// Power is non-negative for non-negative inputs, for any weights
    /// (conductances are physical quantities).
    #[test]
    fn power_is_nonnegative(
        m in 1usize..6,
        n in 1usize..10,
        seed in any::<u64>(),
    ) {
        let w = seeded_weights(m, n, seed);
        let net = SingleLayerNet::from_weights(w, Activation::Identity);
        let mut oracle = Oracle::new(
            net,
            &OracleConfig::ideal().with_access(OutputAccess::None),
            seed,
        ).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 2);
        let u: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        prop_assert!(oracle.query(&u).unwrap().observation.power >= -1e-12);
    }

    /// FGSM perturbations are ℓ∞-bounded by ε and never *decrease* the
    /// loss for a linear model (first-order ascent is exact there).
    #[test]
    fn fgsm_is_bounded_and_ascending_for_linear_models(
        m in 1usize..5,
        n in 2usize..10,
        seed in any::<u64>(),
        eps in prop::sample::select(vec![0.01, 0.1, 0.5]),
    ) {
        let w = seeded_weights(m, n, seed);
        let net = SingleLayerNet::from_weights(w, Activation::Identity);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 3);
        let inputs = Matrix::random_uniform(6, n, 0.0, 1.0, &mut rng);
        let mut targets = Matrix::zeros(6, m);
        for i in 0..6 {
            targets[(i, i % m)] = 1.0;
        }
        let adv = fgsm_batch(&net, &inputs, &targets, Loss::Mse, eps, BoxConstraint::None)
            .unwrap();
        prop_assert!((&adv - &inputs).max_abs() <= eps + 1e-12);
        let before = Loss::Mse.value(&net.forward_batch(&inputs).unwrap(), &targets);
        let after = Loss::Mse.value(&net.forward_batch(&adv).unwrap(), &targets);
        prop_assert!(after >= before - 1e-9, "after {after} < before {before}");
    }

    /// Sec. IV: least-squares recovery is exact whenever Q >= N with
    /// generic (random) queries, regardless of the weights.
    #[test]
    fn least_squares_recovery_is_exact_for_spanning_queries(
        m in 1usize..5,
        n in 2usize..10,
        extra in 0usize..6,
        seed in any::<u64>(),
    ) {
        let w = seeded_weights(m, n, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 4);
        let u = Matrix::random_uniform(n + extra, n, 0.0, 1.0, &mut rng);
        let y = u.matmul(&w.transpose());
        let rec = recover_weights_least_squares(&u, &y).unwrap();
        prop_assert!(relative_error(&rec, &w).unwrap() < 1e-7);
    }

    /// Calibration invariant: probing is invariant to the device's g_min
    /// offset (the differential pair cancels it; the calibration removes
    /// it from the power path).
    #[test]
    fn probe_is_gmin_invariant(
        m in 1usize..5,
        n in 1usize..8,
        seed in any::<u64>(),
        g_min in prop::sample::select(vec![0.0, 0.01, 0.1]),
    ) {
        let w = seeded_weights(m, n, seed);
        let norms = w.col_l1_norms();
        let device = DeviceModel { g_min, g_max: 1.0, ..DeviceModel::ideal() };
        let net = SingleLayerNet::from_weights(w, Activation::Identity);
        let cfg = OracleConfig::ideal()
            .with_access(OutputAccess::None)
            .with_device(device);
        let mut oracle = Oracle::new(net, &cfg, seed).unwrap();
        let probed = probe_column_norms(&mut oracle, 1.0, 1).unwrap();
        for (p, t) in probed.iter().zip(&norms) {
            prop_assert!((p - t).abs() < 1e-8);
        }
    }
}

use rand::Rng;
