//! Offline API-compatible subset of `criterion`.
//!
//! Implements just enough of the criterion API for this workspace's
//! benches to compile and produce useful numbers offline: a fixed
//! warm-up, an adaptive measurement loop, and one `name: time/iter`
//! line per benchmark on stdout. No statistics, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized. Accepted for API compatibility; the
/// shim treats all variants the same.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures and reports per-iteration wall time.
pub struct Bencher {
    /// Total time spent in measured iterations.
    elapsed: Duration,
    /// Number of measured iterations.
    iters: u64,
}

/// Target measurement time per benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(200);
/// Cap on measured iterations, so very fast routines terminate quickly.
const MAX_ITERS: u64 = 10_000;

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iters += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= MEASURE_TARGET || self.iters >= MAX_ITERS {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..3 {
            black_box(routine(setup()));
        }
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if self.elapsed >= MEASURE_TARGET || self.iters >= MAX_ITERS {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("bench {name}: no iterations");
            return;
        }
        let per_iter = self.elapsed.as_nanos() / u128::from(self.iters);
        println!("bench {name}: {per_iter} ns/iter ({} iters)", self.iters);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    bencher.report(name);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Runs a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs a benchmark within this group, passing `input` through.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group. A no-op in this shim.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), f);
        self
    }

    /// Runs a standalone benchmark, passing `input` through.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.to_string(), |b| f(b, input));
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        let mut count = 0u64;
        bencher.iter(|| {
            count += 1;
            black_box(count)
        });
        assert!(bencher.iters > 0);
        assert!(count >= bencher.iters);
    }

    #[test]
    fn batched_measures_routine_only() {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        bencher.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput);
        assert!(bencher.iters > 0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        smoke();
    }
}
