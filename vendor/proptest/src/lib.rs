//! Offline API-compatible subset of `proptest`.
//!
//! Provides the pieces this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range/tuple strategies,
//! [`any`], `prop::collection::vec`, `prop::option::of`,
//! `prop::sample::select`, [`ProptestConfig`], and the [`proptest!`],
//! [`prop_assert!`], [`prop_assert_eq!`] macros.
//!
//! Differences from upstream, deliberately accepted:
//! * no shrinking — a failing case reports its inputs' seed, not a
//!   minimised counterexample;
//! * case generation is fully deterministic: the RNG for case `i` of
//!   test `name` is seeded from `fnv1a(name) ^ splitmix(i)`, so failures
//!   reproduce exactly across runs and machines.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A failed test-case assertion, produced by [`prop_assert!`] /
/// [`prop_assert_eq!`].
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration. Only `cases` is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value using `rng`.
    fn new_value(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut ChaCha8Rng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// A strategy over the whole domain of `T` (uniform over the bit
/// patterns for the supported integer types).
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut ChaCha8Rng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn new_value(&self, rng: &mut ChaCha8Rng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// Strategy combinators, mirroring upstream's `proptest::prelude::prop`.
pub mod prop {
    /// Strategies over collections.
    pub mod collection {
        use super::super::*;

        /// A number of elements: either exact or drawn from a range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            /// Exclusive upper bound.
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// The strategy returned by [`vec`](fn@vec).
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// A `Vec` whose length is drawn from `size` and whose elements
        /// are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn new_value(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.lo..self.size.hi);
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }

    /// Strategies over `Option`.
    pub mod option {
        use super::super::*;

        /// The strategy returned by [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `Some(x)` with probability 1/2, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn new_value(&self, rng: &mut ChaCha8Rng) -> Option<S::Value> {
                if rng.gen_bool(0.5) {
                    Some(self.inner.new_value(rng))
                } else {
                    None
                }
            }
        }
    }

    /// Strategies that sample from explicit lists.
    pub mod sample {
        use super::super::*;

        /// The strategy returned by [`select`].
        pub struct Select<T: Clone> {
            items: Vec<T>,
        }

        /// Picks one of `items` uniformly at random.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select from an empty list");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn new_value(&self, rng: &mut ChaCha8Rng) -> T {
                self.items[rng.gen_range(0..self.items.len())].clone()
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Drives `config.cases` deterministic cases of `f`, panicking with the
/// test name, case number, and seed on the first failure. Used by the
/// [`proptest!`] macro; not part of the public upstream API.
pub fn run_proptest<F>(name: &str, config: &ProptestConfig, mut f: F)
where
    F: FnMut(&mut ChaCha8Rng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    for case in 0..config.cases {
        let seed = base ^ splitmix(u64::from(case));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        if let Err(e) = f(&mut rng) {
            panic!("proptest `{name}` failed at case {case} (seed {seed:#x}): {e}");
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports an optional leading `#![proptest_config(...)]`, doc comments
/// and other attributes on each test, pattern arguments
/// (`(m, n, _) in dims()`), and trailing commas in the argument list.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_proptest(stringify!($name), &config, |__proptest_rng| {
                $(let $pat = $crate::Strategy::new_value(&($strat), __proptest_rng);)+
                let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __proptest_result
            });
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    (($config:expr)) => {};
}

/// Like `assert!`, but fails the current proptest case instead of
/// panicking directly (must be used inside a [`proptest!`] body).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Like `assert_eq!`, but fails the current proptest case instead of
/// panicking directly (must be used inside a [`proptest!`] body).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &($left);
        let right = &($right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let v = Strategy::new_value(&(1usize..8), &mut rng);
            assert!((1..8).contains(&v));
            let f = Strategy::new_value(&(-10.0f64..10.0), &mut rng);
            assert!((-10.0..10.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let strat = prop::collection::vec(0.0f64..1.0, 3usize).prop_map(|v| v.len());
        assert_eq!(Strategy::new_value(&strat, &mut rng), 3);
        let ranged = prop::collection::vec(0u32..5, 1..4);
        for _ in 0..100 {
            let v = Strategy::new_value(&ranged, &mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn select_and_option() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..100 {
            let x = Strategy::new_value(&prop::sample::select(vec![1, 2, 3]), &mut rng);
            assert!([1, 2, 3].contains(&x));
            match Strategy::new_value(&prop::option::of(0u32..4), &mut rng) {
                None => saw_none = true,
                Some(v) => {
                    assert!(v < 4);
                    saw_some = true;
                }
            }
        }
        assert!(saw_none && saw_some);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro handles patterns, tuples, and trailing commas.
        #[test]
        fn macro_smoke(
            (a, b, _) in (0u32..10, 0u32..10, 0u32..10),
            v in prop::collection::vec(-1.0f64..1.0, 1..5),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(!v.is_empty(), "len {}", v.len());
            prop_assert_eq!(v.len(), v.len());
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        super::run_proptest("det", &ProptestConfig::with_cases(5), |rng| {
            use rand::RngCore;
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second = Vec::new();
        super::run_proptest("det", &ProptestConfig::with_cases(5), |rng| {
            use rand::RngCore;
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }
}
