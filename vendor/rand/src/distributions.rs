//! Distributions: the [`Standard`] distribution, uniform ranges, and the
//! [`SampleRange`] machinery behind `Rng::gen_range`.

use crate::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural domain" distribution: all values for integers, `[0, 1)`
/// for floats.
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, as upstream: uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types which can be sampled uniformly from a `lo..hi` range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Rejection-free-enough uniform integer in `[0, range)` (`range > 0`),
/// via the widening-multiply technique with a rejection zone.
fn uniform_u64_below<R: RngCore + ?Sized>(range: u64, rng: &mut R) -> u64 {
    debug_assert!(range > 0);
    // Largest multiple of `range` that fits in a u64, minus one: values
    // above it would bias the modulus.
    let zone = u64::MAX - (u64::MAX - range + 1) % range;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % range;
        }
    }
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64_below(span, rng) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(span + 1, rng) as $t)
            }
        }
    )*};
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                assert!(lo.is_finite() && hi.is_finite(), "gen_range: non-finite bound");
                let u: f64 = Standard.sample(rng);
                let v = lo as f64 + (hi as f64 - lo as f64) * u;
                // Guard the open upper bound against rounding.
                if v as $t >= hi { lo } else { v as $t }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                assert!(lo.is_finite() && hi.is_finite(), "gen_range: non-finite bound");
                let u: f64 = Standard.sample(rng);
                let v = lo as f64 + (hi as f64 - lo as f64) * u;
                if v as $t > hi { hi } else { v as $t }
            }
        }
    )*};
}

sample_uniform_float!(f32, f64);

/// Ranges accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// A reusable uniform distribution over `[low, high)`.
pub struct Uniform<T: SampleUniform> {
    low: T,
    high: T,
}

impl<T: SampleUniform> Uniform<T> {
    /// Creates a uniform distribution over `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new: empty range");
        Uniform { low, high }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_half_open(self.low, self.high, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    impl SeedableRng for Lcg {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = Lcg::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..4000 {
            let x: f64 = Standard.sample(&mut rng);
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 4000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn uniform_integers_cover_domain() {
        let mut rng = Lcg::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[usize::sample_half_open(0, 7, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all of 0..7 sampled: {seen:?}");
    }

    #[test]
    fn uniform_distribution_object() {
        let mut rng = Lcg::seed_from_u64(3);
        let d = Uniform::new(-1.5f64, 2.5);
        for _ in 0..200 {
            let x = d.sample(&mut rng);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn negative_integer_ranges() {
        let mut rng = Lcg::seed_from_u64(4);
        for _ in 0..200 {
            let x: i64 = i64::sample_half_open(-5, 5, &mut rng);
            assert!((-5..5).contains(&x));
            let y: i32 = i32::sample_inclusive(-3, -3, &mut rng);
            assert_eq!(y, -3);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Lcg::seed_from_u64(5);
        let _ = usize::sample_half_open(3, 3, &mut rng);
    }
}
