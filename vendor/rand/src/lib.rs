//! Vendored, offline subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API.
//!
//! This workspace builds in environments with no crates.io access, so the
//! external RNG dependency is replaced by this in-tree shim exposing the
//! exact API surface the workspace uses: [`Rng`], [`RngCore`],
//! [`SeedableRng`], [`distributions::Uniform`], and
//! [`seq::SliceRandom`]. Algorithms follow the upstream definitions where
//! they are load-bearing (notably [`SeedableRng::seed_from_u64`]'s PCG32
//! seed expansion, so seeds stay stable if the real crate is ever
//! restored); elsewhere they are straightforward deterministic
//! implementations.
//!
//! Everything here is deterministic given the generator's seed — there is
//! deliberately no `thread_rng`/OS entropy: reproducibility is a core
//! requirement of the experiment harness.

#![deny(unsafe_code)]

pub mod distributions;
pub mod seq;

use distributions::{Distribution, SampleRange, Standard};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it to a full seed with
    /// the same PCG32 stream upstream `rand` 0.8 uses, so `seed_from_u64`
    /// values are interchangeable with the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution (uniform over
    /// the type's natural domain; `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0..=1.0)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} not in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution object.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial deterministic generator for exercising the trait plumbing.
    struct StepRng(u64);

    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    impl SeedableRng for StepRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            StepRng(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StepRng(42);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z: f64 = rng.gen_range(0.5..=1.5);
            assert!((0.5..=1.5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StepRng(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn seed_from_u64_matches_upstream_expansion() {
        // First PCG32 output for state 0 after one advance; guards against
        // accidental edits to the seed-expansion constants.
        let rng = StepRng::seed_from_u64(0);
        let seed_bytes = rng.0.to_le_bytes();
        let mut state = 0u64
            .wrapping_mul(6364136223846793005)
            .wrapping_add(11634580027462260723);
        let w0 = {
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            xorshifted.rotate_right((state >> 59) as u32)
        };
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(11634580027462260723);
        let w1 = {
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            xorshifted.rotate_right((state >> 59) as u32)
        };
        assert_eq!(&seed_bytes[..4], &w0.to_le_bytes());
        assert_eq!(&seed_bytes[4..], &w1.to_le_bytes());
    }

    #[test]
    fn trait_objects_and_reborrows_work() {
        fn takes_dyn(rng: &mut dyn RngCore) -> u64 {
            rng.next_u64()
        }
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StepRng(3);
        takes_dyn(&mut rng);
        let r = &mut rng;
        let x = takes_generic(r);
        assert!((0.0..1.0).contains(&x));
    }
}
