//! Sequence helpers: in-place shuffling and random element choice.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RngCore, SeedableRng};

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    impl SeedableRng for Lcg {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And with overwhelming probability not the identity.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_respects_emptiness() {
        let mut rng = Lcg::seed_from_u64(10);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
