//! Vendored, offline subset of the
//! [`rand_chacha`](https://crates.io/crates/rand_chacha) crate: the
//! [`ChaCha8Rng`] generator, implementing the genuine ChaCha stream
//! cipher with 8 rounds (IETF variant: 256-bit key, 64-bit block counter,
//! 64-bit stream id).
//!
//! The workspace uses `ChaCha8Rng` as its only generator, seeded either
//! from a full 32-byte key or through `SeedableRng::seed_from_u64`. The
//! keystream here is the standard ChaCha8 keystream, so statistical
//! quality matches the real crate; the word-emission order is the
//! scalar/reference order (sequential words of sequential blocks).

#![deny(unsafe_code)]

use rand::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: usize = 16;
const CHACHA8_DOUBLE_ROUNDS: usize = 4;

/// A ChaCha random number generator with 8 rounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words `k0..k7`.
    key: [u32; 8],
    /// 64-bit block counter (state words 12–13).
    counter: u64,
    /// 64-bit stream id (state words 14–15).
    stream: u64,
    /// The current decoded block.
    buffer: [u32; WORDS_PER_BLOCK],
    /// Next word to emit from `buffer`; `WORDS_PER_BLOCK` forces a refill.
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// The stream id, settable to derive independent streams from one key
    /// (used by the campaign runtime for per-trial generators).
    pub fn set_stream(&mut self, stream: u64) {
        if stream != self.stream {
            self.stream = stream;
            self.counter = 0;
            self.index = WORDS_PER_BLOCK;
        }
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    fn refill(&mut self) {
        let mut state: [u32; WORDS_PER_BLOCK] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let initial = state;
        for _ in 0..CHACHA8_DOUBLE_ROUNDS {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= WORDS_PER_BLOCK {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        b.set_stream(1);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
        // Same stream id restores the original sequence.
        let mut c = ChaCha8Rng::seed_from_u64(5);
        c.set_stream(1);
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(ys, zs);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chacha_keystream_known_answer() {
        // ChaCha block function self-consistency: the first block for an
        // all-zero key must differ from the second, and re-seeding
        // reproduces both (guards the counter logic).
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let block1: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let block2: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(block1, block2);
        let mut again = ChaCha8Rng::from_seed([0u8; 32]);
        let block1b: Vec<u32> = (0..16).map(|_| again.next_u32()).collect();
        assert_eq!(block1, block1b);
    }

    #[test]
    fn float_sampling_behaves() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
