//! Vendored, offline subset of the [`rayon`](https://crates.io/crates/rayon)
//! API, backed by `std::thread::scope`.
//!
//! Only the combinators the workspace actually uses are provided:
//!
//! * `range.into_par_iter().map(f).collect::<Vec<_>>()`
//! * `vec.into_par_iter().map(f).collect::<Vec<_>>()` / `.for_each(f)`
//! * `slice.par_chunks_mut(n).enumerate().for_each(f)`
//!
//! Work is split into one contiguous chunk per available core and joined
//! in order, so `collect` preserves item order exactly like rayon. On a
//! single-core host (or for single-item workloads) everything runs inline
//! with no thread spawns.

#![deny(unsafe_code)]

use std::ops::Range;

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

fn num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` over `items` across scoped worker threads, preserving order.
fn parallel_map<I, T, F>(items: Vec<I>, f: &F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<I> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<T>>()))
            .collect();
        let mut out = Vec::new();
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Conversion into a parallel iterator (mirrors rayon's trait of the same
/// name).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Materialises the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

range_into_par_iter!(u32, u64, usize, i32, i64);

/// A materialised parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each element through `f` (lazily; executed at `collect` /
    /// `for_each`).
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map(self.items, &f);
    }

    /// Collects the elements (order-preserving).
    pub fn collect<B: FromIterator<T>>(self) -> B {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel iterator.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, U, F> ParMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    /// Executes the map in parallel and collects in order.
    pub fn collect<B: FromIterator<U>>(self) -> B {
        parallel_map(self.items, &self.f).into_iter().collect()
    }

    /// Executes the map in parallel for its side effects.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(U) + Sync,
    {
        let f = self.f;
        parallel_map(self.items, &|item| g(f(item)));
    }
}

/// Parallel mutable chunking of slices.
pub trait ParallelSliceMut<T: Send> {
    /// Like `chunks_mut`, but the downstream `for_each` runs in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be > 0");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            chunks: self.chunks,
        }
    }

    /// Runs `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        parallel_map(self.chunks, &f);
    }
}

/// Enumerated parallel iterator over mutable chunks.
pub struct ParChunksMutEnumerate<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Runs `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        let indexed: Vec<(usize, &mut [T])> = self.chunks.into_iter().enumerate().collect();
        parallel_map(indexed, &f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..100).into_par_iter().map(|i| i * i).collect();
        let want: Vec<u64> = (0u64..100).map(|i| i * i).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn vec_into_par_iter() {
        let v = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn par_chunks_mut_enumerate() {
        let mut data = vec![0.0f64; 37];
        data.par_chunks_mut(5).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i as f64;
            }
        });
        for (j, &x) in data.iter().enumerate() {
            assert_eq!(x, (j / 5) as f64, "element {j}");
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let mut nothing: Vec<u8> = Vec::new();
        nothing.par_chunks_mut(4).for_each(|_| {});
    }

    #[test]
    fn for_each_runs_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let total = AtomicU64::new(0);
        (1u64..101).into_par_iter().for_each(|i| {
            total.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 5050);
    }
}
