//! `Serialize`/`Deserialize` implementations for primitives and standard
//! containers.

use crate::{DeError, Deserialize, Serialize, Value};

// ---------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.serialize(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------

fn as_u64(value: &Value) -> Result<u64, DeError> {
    match value {
        Value::U64(v) => Ok(*v),
        Value::I64(v) if *v >= 0 => Ok(*v as u64),
        other => Err(DeError::custom(format!(
            "expected unsigned integer, found {}",
            other.type_name()
        ))),
    }
}

fn as_i64(value: &Value) -> Result<i64, DeError> {
    match value {
        Value::I64(v) => Ok(*v),
        Value::U64(v) => {
            i64::try_from(*v).map_err(|_| DeError::custom(format!("integer {v} overflows i64")))
        }
        other => Err(DeError::custom(format!(
            "expected integer, found {}",
            other.type_name()
        ))),
    }
}

macro_rules! deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let v = as_u64(value)?;
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!(
                        "integer {v} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! deserialize_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let v = as_i64(value)?;
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!(
                        "integer {v} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

deserialize_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::F64(v) => Ok(*v),
            Value::U64(v) => Ok(*v as f64),
            Value::I64(v) => Ok(*v as f64),
            other => Err(DeError::custom(format!(
                "expected number, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        f64::deserialize(value).map(|v| v as f32)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let items = value.as_array().ok_or_else(|| {
            DeError::custom(format!("expected array, found {}", value.type_name()))
        })?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::deserialize(item).map_err(|e| e.in_field(&format!("[{i}]"))))
            .collect()
    }
}

fn tuple_items(value: &Value, len: usize) -> Result<&[Value], DeError> {
    let items = value
        .as_array()
        .ok_or_else(|| DeError::custom(format!("expected array, found {}", value.type_name())))?;
    if items.len() != len {
        return Err(DeError::custom(format!(
            "expected array of length {len}, found {}",
            items.len()
        )));
    }
    Ok(items)
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let items = tuple_items(value, 2)?;
        Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let items = tuple_items(value, 3)?;
        Ok((
            A::deserialize(&items[0])?,
            B::deserialize(&items[1])?,
            C::deserialize(&items[2])?,
        ))
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-7i32).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn integers_accept_floats_never() {
        assert!(usize::deserialize(&Value::F64(1.0)).is_err());
        assert!(f64::deserialize(&Value::U64(3)).is_ok());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1usize, vec![0.5f64, 1.5]), (2, vec![])];
        let val = v.serialize();
        let back: Vec<(usize, Vec<f64>)> = Deserialize::deserialize(&val).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn option_null_roundtrip() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize(&some.serialize()).unwrap(), some);
        assert_eq!(Option::<u32>::deserialize(&none.serialize()).unwrap(), none);
    }

    #[test]
    fn errors_carry_context() {
        let val = Value::Array(vec![Value::U64(1), Value::Str("no".into())]);
        let err = Vec::<u64>::deserialize(&val).unwrap_err();
        assert!(err.to_string().contains("[1]"), "{err}");
    }
}
