//! Vendored, offline subset of [`serde`](https://serde.rs).
//!
//! The real serde separates the data model (Serializer/Deserializer
//! visitors) from formats; this workspace only ever serialises to JSON,
//! so the shim collapses the data model to a concrete JSON-like
//! [`Value`] tree:
//!
//! * [`Serialize`] renders a type into a [`Value`];
//! * [`Deserialize`] reconstructs a type from a [`Value`];
//! * `#[derive(Serialize, Deserialize)]` (re-exported from the companion
//!   `serde_derive` shim) supports named-field structs — including
//!   generic ones — and unit-variant enums, which covers every derived
//!   type in this repository;
//! * the `serde_json` shim does the text encoding/decoding of [`Value`].
//!
//! Field order is preserved ([`Value::Object`] is an ordered list), so
//! serialised output is deterministic — a property the campaign journal
//! and the determinism tests rely on.

#![deny(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

mod impls;
pub mod value;

pub use value::Value;

/// Deserialisation error: a human-readable path/description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given description.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Annotates an error with the field it occurred under.
    pub fn in_field(self, field: &str) -> Self {
        DeError {
            message: format!("{field}: {}", self.message),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// A type that can be rendered into the JSON data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn serialize(&self) -> Value;
}

/// A type that can be reconstructed from the JSON data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape or domain doesn't match.
    fn deserialize(value: &Value) -> Result<Self, DeError>;
}

pub mod de {
    //! Deserialisation traits (mirrors `serde::de`).

    /// Owned deserialisation marker. The shim's [`crate::Deserialize`] is
    //  already lifetime-free, so this is a blanket alias.
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Derive-macro support: fetches a field from an object, treating a
/// missing field as JSON `null` (so `Option` fields default to `None`).
#[doc(hidden)]
pub fn __get_field<'v>(fields: &'v [(String, Value)], name: &str) -> &'v Value {
    static NULL: Value = Value::Null;
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map_or(&NULL, |(_, v)| v)
}
