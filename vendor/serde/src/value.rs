//! The concrete JSON data model used by the serde shim.

/// A JSON value. `Object` is an ordered `Vec` (not a map) so that
/// serialised field order matches declaration order deterministically.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (non-negative integers parse as [`Value::U64`]).
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: ordered `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A short name for the value's JSON type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}
