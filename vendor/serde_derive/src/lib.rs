//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build
//! has no `syn`/`quote`). Supported shapes — which cover every derived
//! type in this workspace:
//!
//! * structs with named fields, including type-generic ones
//!   (`struct Envelope<T> { ... }`);
//! * enums whose variants are all unit variants.
//!
//! Anything else (tuple structs, data-carrying enum variants, lifetimes)
//! produces a `compile_error!` naming the unsupported construct, so a
//! future change fails loudly at the derive site instead of silently
//! serialising wrongly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed derive input: name, type-generic parameter names, and shape.
struct Input {
    name: String,
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// Unit variants, in declaration order.
    Enum(Vec<String>),
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});")
        .parse()
        .expect("compile_error tokens")
}

/// Skips attribute (`#[...]`) pairs and visibility modifiers.
fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);

    let kind_word = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    if kind_word != "struct" && kind_word != "enum" {
        return Err(format!("expected `struct` or `enum`, found `{kind_word}`"));
    }

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };

    // Generic parameter list, if any. Only type parameters are supported.
    let mut generics = Vec::new();
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        iter.next();
        let mut depth: u32 = 1;
        let mut expecting_param = true;
        for tok in iter.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    expecting_param = true;
                }
                TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                    expecting_param = false;
                }
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    return Err(format!(
                        "serde shim: lifetimes are not supported in `{name}`"
                    ));
                }
                TokenTree::Ident(id) if expecting_param && depth == 1 => {
                    if id.to_string() == "const" {
                        return Err(format!(
                            "serde shim: const generics are not supported in `{name}`"
                        ));
                    }
                    generics.push(id.to_string());
                    expecting_param = false;
                }
                _ => {}
            }
        }
    }

    // Skip anything (e.g. a where clause) up to the brace-delimited body.
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!("serde shim: unit struct `{name}` is not supported"));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde shim: tuple struct `{name}` is not supported (use named fields)"
                ));
            }
            Some(_) => continue,
            None => return Err(format!("`{name}`: missing body")),
        }
    };

    let kind = if kind_word == "struct" {
        Kind::Struct(parse_named_fields(body.stream(), &name)?)
    } else {
        Kind::Enum(parse_unit_variants(body.stream(), &name)?)
    };
    Ok(Input {
        name,
        generics,
        kind,
    })
}

fn parse_named_fields(body: TokenStream, name: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let field = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("`{name}`: expected field name, found {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("`{name}.{field}`: expected `:`, found {other:?}")),
        }
        fields.push(field);
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut angle_depth: u32 = 0;
        loop {
            match iter.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
            }
        }
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream, name: &str) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let variant = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("`{name}`: expected variant, found {other:?}")),
        };
        match iter.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde shim: enum `{name}` variant `{variant}` carries data; only unit \
                     variants are supported"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Skip an explicit discriminant.
                for tok in iter.by_ref() {
                    if matches!(&tok, TokenTree::Punct(q) if q.as_char() == ',') {
                        break;
                    }
                }
                variants.push(variant);
            }
            other => return Err(format!("`{name}::{variant}`: unexpected token {other:?}")),
        }
    }
    Ok(variants)
}

/// `impl<T: Bound, ...> Trait for Name<T, ...>` header pieces.
fn impl_header(input: &Input, bound: &str) -> (String, String) {
    if input.generics.is_empty() {
        (String::new(), input.name.clone())
    } else {
        let params: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", params.join(", ")),
            format!("{}<{}>", input.name, input.generics.join(", ")),
        )
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let (impl_generics, self_ty) = impl_header(&parsed, "::serde::Serialize");
    let body = match &parsed.kind {
        Kind::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((String::from({f:?}), \
                         ::serde::Serialize::serialize(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = \
                 Vec::with_capacity({});\n{pushes}::serde::Value::Object(fields)",
                fields.len()
            )
        }
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(String::from({v:?})),\n",
                        name = parsed.name
                    )
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {self_ty} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let (impl_generics, self_ty) = impl_header(&parsed, "::serde::Deserialize");
    let name = &parsed.name;
    let body = match &parsed.kind {
        Kind::Struct(fields) => {
            let field_inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(\
                         ::serde::__get_field(obj, {f:?}))\
                         .map_err(|e| e.in_field({f:?}))?,\n"
                    )
                })
                .collect();
            format!(
                "let obj = value.as_object().ok_or_else(|| ::serde::DeError::custom(\
                 format!(\"expected object for struct {name}, found {{}}\", \
                 value.type_name())))?;\n\
                 ::std::result::Result::Ok({name} {{\n{field_inits}}})"
            )
        }
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "::std::option::Option::Some({v:?}) => \
                                  ::std::result::Result::Ok({name}::{v}),\n"
                    )
                })
                .collect();
            format!(
                "match value.as_str() {{\n{arms}\
                 ::std::option::Option::Some(other) => \
                 ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant {{other:?}} for enum {name}\"))),\n\
                 ::std::option::Option::None => \
                 ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"expected string variant for enum {name}, found {{}}\", \
                 value.type_name()))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize for {self_ty} {{\n\
             fn deserialize(value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
