//! Offline API-compatible subset of `serde_json`.
//!
//! Serialises the shim's [`Value`] tree to JSON text and parses JSON text
//! back into a [`Value`] tree, then converts via the shim's
//! `Serialize`/`Deserialize` traits. Only the entry points this workspace
//! uses are provided: [`to_string`], [`to_string_pretty`],
//! [`to_writer_pretty`], [`from_str`], [`from_reader`], and [`Error`].
//!
//! Determinism notes:
//! * objects serialise in field declaration order (`Value::Object` is an
//!   ordered vec);
//! * floats use Rust's shortest-roundtrip formatting (`{:?}`), so equal
//!   `f64` values always produce byte-identical text;
//! * non-finite floats serialise as `null`, matching upstream `serde_json`.

use std::fmt;
use std::io::{Read, Write};

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Error type for JSON serialisation, parsing, and the IO beneath them.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("io: {e}"))
    }
}

/// Result alias matching upstream `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest representation that round-trips,
        // and always includes a decimal point or exponent (`1.0`).
        out.push_str(&format!("{v:?}"));
    } else {
        // Upstream serde_json emits null for NaN / infinities.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, value: &Value, pretty: bool, indent: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => write_f64(out, *v),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_value(out, item, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_escaped(out, key);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push('}');
        }
    }
}

/// Serialises `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), false, 0);
    Ok(out)
}

/// Serialises `value` to a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), true, 0);
    Ok(out)
}

/// Serialises `value` pretty-printed into `writer`.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string_pretty(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize())
}

/// Converts a [`Value`] tree into a typed value.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::deserialize(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::new(format!("{} at byte {}", message.into(), self.pos))
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {:?}, found {:?}",
                byte as char,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn expect_keyword(&mut self, word: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_whitespace();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(format!("unexpected character {:?}", b as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: must be followed by \uDCxx.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so the bytes
                    // are valid; copy the whole character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(v) = digits.parse::<i64>() {
                    return Ok(Value::I64(-v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            // Integer overflowing 64 bits: fall through to f64.
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

/// Parses a JSON document into a [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Deserialises a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    T::deserialize(&value).map_err(Error::from)
}

/// Deserialises a value of type `T` from a reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("42").unwrap(), Value::U64(42));
        assert_eq!(parse_value("-3").unwrap(), Value::I64(-3));
        assert_eq!(parse_value("1.5").unwrap(), Value::F64(1.5));
        assert_eq!(parse_value("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(
            parse_value("\"a\\nb\"").unwrap(),
            Value::Str("a\nb".to_string())
        );
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            parse_value("\"\\u00e9\"").unwrap(),
            Value::Str("é".to_string())
        );
        assert_eq!(
            parse_value("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("😀".to_string())
        );
    }

    #[test]
    fn float_formatting_roundtrips() {
        for v in [0.0, 1.0, -2.5, 0.1, 1e-8, 123456789.123456] {
            let text = to_string(&v).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, v, "{text}");
        }
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(1)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(
            pretty,
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}"
        );
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("{\"a\":}").is_err());
        assert!(parse_value("[1,]").is_err());
    }

    #[test]
    fn typed_roundtrip_via_reader() {
        let v: Vec<(String, f64)> = from_reader(r#"[["x", 1.5], ["y", -2.0]]"#.as_bytes()).unwrap();
        assert_eq!(v, vec![("x".to_string(), 1.5), ("y".to_string(), -2.0)]);
    }
}
